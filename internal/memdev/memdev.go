// Package memdev models accelerator-local memory: byte-addressable regions
// that can be exposed on PCIe through a BAR window and accessed by DMA peers.
//
// The package captures the one hardware subtlety the paper leans on (§5.1
// "Data consistency in GPU memory"): DMA writes from the NIC into GPU memory
// may become visible out of order with respect to each other. A Region can
// therefore be configured as weakly ordered, in which case each committed
// write gains visibility only after a bounded, pseudo-random delay; readers
// polling a doorbell can then observe the doorbell before the payload, which
// is exactly the corruption hazard the paper's RDMA-read write barrier
// exists to prevent.
package memdev

import (
	"fmt"
	"time"

	"lynx/internal/sim"
)

// Region is a contiguous range of device memory.
type Region struct {
	name    string
	buf     []byte
	sim     *sim.Sim
	relaxed bool
	maxSkew time.Duration
	pending []pendingWrite

	watchers []*watcher

	// buckets indexes watchers by fixed-size byte ranges so a write only
	// examines watchers that can overlap it, instead of scanning every
	// watcher on the region (a queue group region carries several watchers
	// per mqueue, so the linear scan was O(queues) per DMA write). A watcher
	// spanning multiple buckets appears in each; fireSeq deduplicates within
	// one fire.
	buckets [][]*watcher
	fireSeq uint64

	// stats
	writes, reads uint64
}

// watchBucketShift sizes the watcher index granularity (256-byte buckets):
// fine enough that a slot-sized write touches one or two buckets, coarse
// enough that the index stays small for multi-megabyte regions.
const watchBucketShift = 8

// watcher wakes a gate whenever a write overlaps its byte range. idx is the
// registration order, which fire preserves so that wake order — and with it
// the deterministic event sequence — is identical to a plain linear scan.
type watcher struct {
	off, n int
	idx    int
	seen   uint64
	gate   *sim.Gate
}

type pendingWrite struct {
	off       int
	data      []byte
	visibleAt sim.Time
}

// Config controls a region's consistency behaviour.
type Config struct {
	// Relaxed marks the region as weakly ordered for incoming DMA: each
	// write's visibility is delayed by a pseudo-random amount in
	// [0, MaxSkew]. Local (accelerator-side) accesses are always ordered.
	Relaxed bool
	// MaxSkew bounds the visibility delay of relaxed writes.
	MaxSkew time.Duration
}

// NewRegion allocates a zeroed region of the given size.
func NewRegion(s *sim.Sim, name string, size int, cfg Config) *Region {
	if size <= 0 {
		panic("memdev: region size must be positive")
	}
	return &Region{
		name:    name,
		buf:     make([]byte, size),
		sim:     s,
		relaxed: cfg.Relaxed,
		maxSkew: cfg.MaxSkew,
	}
}

// Name returns the region's name.
func (r *Region) Name() string { return r.name }

// Size returns the region's capacity in bytes.
func (r *Region) Size() int { return len(r.buf) }

// check validates an access range.
func (r *Region) check(off, n int) {
	if off < 0 || n < 0 || off+n > len(r.buf) {
		panic(fmt.Sprintf("memdev: access [%d,%d) out of range of %s (size %d)",
			off, off+n, r.name, len(r.buf)))
	}
}

// Watch returns a gate fired whenever a write overlapping [off, off+n)
// becomes visible. It lets simulated pollers block instead of spinning;
// callers re-add the modelled polling detection latency after waking.
func (r *Region) Watch(off, n int) *sim.Gate {
	r.check(off, n)
	w := &watcher{off: off, n: n, idx: len(r.watchers), gate: sim.NewGate(r.sim)}
	r.watchers = append(r.watchers, w)
	if n > 0 {
		if r.buckets == nil {
			nb := (len(r.buf) + (1 << watchBucketShift) - 1) >> watchBucketShift
			r.buckets = make([][]*watcher, nb)
		}
		for b := off >> watchBucketShift; b <= (off+n-1)>>watchBucketShift; b++ {
			r.buckets[b] = append(r.buckets[b], w)
		}
	}
	return w.gate
}

// fire wakes watchers overlapping the written range, in registration order.
func (r *Region) fire(off, n int) {
	if n <= 0 || len(r.watchers) == 0 {
		return
	}
	r.fireSeq++
	hi := (off + n - 1) >> watchBucketShift
	if hi >= len(r.buckets) {
		hi = len(r.buckets) - 1
	}
	// Collect overlapping watchers from the covered buckets, restoring
	// registration order (bucket lists are individually ordered, but a write
	// spanning buckets interleaves them). The hit set is almost always 0–2
	// watchers, so an insertion sort over a stack scratch buffer suffices.
	var scratch [8]*watcher
	hits := scratch[:0]
	for b := off >> watchBucketShift; b <= hi; b++ {
		for _, w := range r.buckets[b] {
			if w.seen == r.fireSeq || off >= w.off+w.n || w.off >= off+n {
				continue
			}
			w.seen = r.fireSeq
			hits = append(hits, w)
			for i := len(hits) - 1; i > 0 && hits[i-1].idx > hits[i].idx; i-- {
				hits[i-1], hits[i] = hits[i], hits[i-1]
			}
		}
	}
	for _, w := range hits {
		w.gate.Fire()
	}
}

// WriteLocal stores data with strong ordering (accelerator-side store).
func (r *Region) WriteLocal(off int, data []byte) {
	r.check(off, len(data))
	r.applyPending()
	copy(r.buf[off:], data)
	r.writes++
	r.fire(off, len(data))
}

// WriteDMA stores data as an incoming DMA write. On a relaxed region the
// write commits now but becomes visible to ReadLocal only after a bounded
// pseudo-random skew; Flush forces visibility.
func (r *Region) WriteDMA(off int, data []byte) {
	r.check(off, len(data))
	r.writes++
	if !r.relaxed || r.maxSkew <= 0 {
		r.applyPending()
		copy(r.buf[off:], data)
		r.fire(off, len(data))
		return
	}
	skew := time.Duration(r.sim.Rand().Int64N(int64(r.maxSkew) + 1))
	cp := make([]byte, len(data))
	copy(cp, data)
	at := r.sim.Now().Add(skew)
	r.pending = append(r.pending, pendingWrite{
		off:       off,
		data:      cp,
		visibleAt: at,
	})
	n := len(data)
	r.sim.At(at, func() { r.fire(off, n) })
}

// applyPending commits pending writes whose visibility time has arrived.
func (r *Region) applyPending() {
	if len(r.pending) == 0 {
		return
	}
	now := r.sim.Now()
	rest := r.pending[:0]
	for _, w := range r.pending {
		if w.visibleAt <= now {
			copy(r.buf[w.off:], w.data)
		} else {
			rest = append(rest, w)
		}
	}
	r.pending = rest
}

// Flush makes all pending DMA writes visible immediately. This models the
// paper's RDMA-read write barrier (§5.1): a read through the same path
// forces earlier posted writes to complete.
func (r *Region) Flush() {
	flushed := r.pending
	r.pending = r.pending[:0]
	for _, w := range flushed {
		copy(r.buf[w.off:], w.data)
	}
	for _, w := range flushed {
		r.fire(w.off, len(w.data))
	}
}

// ReadLocal copies n bytes at off into a fresh slice, observing only writes
// that have become visible.
func (r *Region) ReadLocal(off, n int) []byte {
	r.check(off, n)
	r.applyPending()
	r.reads++
	out := make([]byte, n)
	copy(out, r.buf[off:])
	return out
}

// ReadDMA is a DMA read of the region (e.g. the SNIC polling a TX ring).
// DMA reads are performed by the NIC through the same ordered path as the
// barrier read, so they see all committed writes.
func (r *Region) ReadDMA(off, n int) []byte {
	r.check(off, n)
	r.Flush()
	r.reads++
	out := make([]byte, n)
	copy(out, r.buf[off:])
	return out
}

// Byte reads one visible byte (convenience for doorbell polling).
func (r *Region) Byte(off int) byte {
	r.check(off, 1)
	r.applyPending()
	return r.buf[off]
}

// PendingWrites reports how many DMA writes are committed but not yet
// visible (0 on strongly ordered regions).
func (r *Region) PendingWrites() int { return len(r.pending) }

// Stats reports cumulative access counters.
func (r *Region) Stats() (writes, reads uint64) { return r.writes, r.reads }

// ---------------------------------------------------------------------------

// Memory is a device's memory: a simple bump allocator of named regions,
// with a flag for whether the device can expose them on its PCIe BAR
// (the paper's first hardware requirement, §4.4).
type Memory struct {
	sim       *sim.Sim
	device    string
	capacity  int
	used      int
	barCap    bool
	regions   map[string]*Region
	regionCfg Config
}

// NewMemory creates a device memory of the given capacity. barCapable
// reports whether regions can be mapped for peer-to-peer PCIe access.
func NewMemory(s *sim.Sim, device string, capacity int, barCapable bool, cfg Config) *Memory {
	return &Memory{
		sim:       s,
		device:    device,
		capacity:  capacity,
		barCap:    barCapable,
		regions:   make(map[string]*Region),
		regionCfg: cfg,
	}
}

// BARCapable reports whether the device can expose memory on PCIe.
func (m *Memory) BARCapable() bool { return m.barCap }

// Device returns the owning device name.
func (m *Memory) Device() string { return m.device }

// Alloc carves a new region out of the device memory.
func (m *Memory) Alloc(name string, size int) (*Region, error) {
	if _, dup := m.regions[name]; dup {
		return nil, fmt.Errorf("memdev: region %q already exists on %s", name, m.device)
	}
	if m.used+size > m.capacity {
		return nil, fmt.Errorf("memdev: %s out of memory (%d used, %d requested, %d capacity)",
			m.device, m.used, size, m.capacity)
	}
	m.used += size
	r := NewRegion(m.sim, m.device+"/"+name, size, m.regionCfg)
	m.regions[name] = r
	return r, nil
}

// MustAlloc is Alloc that panics on failure, for initialization code.
func (m *Memory) MustAlloc(name string, size int) *Region {
	r, err := m.Alloc(name, size)
	if err != nil {
		panic(err)
	}
	return r
}

// Region looks up a region by name.
func (m *Memory) Region(name string) (*Region, bool) {
	r, ok := m.regions[name]
	return r, ok
}

// Free releases a region's accounting (the region itself must no longer be
// used).
func (m *Memory) Free(name string) {
	if r, ok := m.regions[name]; ok {
		m.used -= r.Size()
		delete(m.regions, name)
	}
}

// Used reports allocated bytes.
func (m *Memory) Used() int { return m.used }
