package memdev

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"lynx/internal/sim"
)

func newSim() *sim.Sim { return sim.New(sim.Config{Seed: 1}) }

func TestRegionReadWrite(t *testing.T) {
	s := newSim()
	r := NewRegion(s, "r", 64, Config{})
	r.WriteLocal(8, []byte("hello"))
	if got := r.ReadLocal(8, 5); string(got) != "hello" {
		t.Fatalf("got %q", got)
	}
	if got := r.ReadLocal(0, 4); !bytes.Equal(got, []byte{0, 0, 0, 0}) {
		t.Fatalf("fresh region not zeroed: %v", got)
	}
}

func TestRegionBounds(t *testing.T) {
	s := newSim()
	r := NewRegion(s, "r", 16, Config{})
	for _, f := range []func(){
		func() { r.WriteLocal(10, make([]byte, 10)) },
		func() { r.ReadLocal(-1, 4) },
		func() { r.ReadLocal(0, 17) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected out-of-range panic")
				}
			}()
			f()
		}()
	}
}

func TestStrongOrderingIsImmediate(t *testing.T) {
	s := newSim()
	r := NewRegion(s, "r", 32, Config{})
	r.WriteDMA(0, []byte{0xAB})
	if r.Byte(0) != 0xAB {
		t.Fatal("ordered DMA write must be visible immediately")
	}
	if r.PendingWrites() != 0 {
		t.Fatal("ordered region must not queue writes")
	}
}

// The §5.1 hazard: with relaxed ordering and no barrier, a doorbell written
// after the payload can become visible first.
func TestRelaxedOrderingCanReorder(t *testing.T) {
	s := newSim()
	r := NewRegion(s, "gpu", 64, Config{Relaxed: true, MaxSkew: 10 * time.Microsecond})
	reordered := false
	s.Spawn("nic", func(p *sim.Proc) {
		for i := 0; i < 200 && !reordered; i++ {
			r.WriteLocal(0, make([]byte, 64)) // reset
			r.WriteDMA(0, []byte("payload!"))
			r.WriteDMA(63, []byte{1}) // doorbell
			// Poll like a GPU threadblock would.
			for r.Byte(63) == 0 {
				p.Sleep(500 * time.Nanosecond)
			}
			if string(r.ReadLocal(0, 8)) != "payload!" {
				reordered = true
			}
			p.Sleep(20 * time.Microsecond) // let stragglers land
		}
	})
	s.Run()
	if !reordered {
		t.Fatal("relaxed region never exhibited doorbell/payload reordering in 200 trials")
	}
}

// The fix: a Flush (RDMA-read barrier) before the doorbell write makes the
// payload visible first, always.
func TestFlushBarrierPreventsReordering(t *testing.T) {
	s := newSim()
	r := NewRegion(s, "gpu", 64, Config{Relaxed: true, MaxSkew: 10 * time.Microsecond})
	s.Spawn("nic", func(p *sim.Proc) {
		for i := 0; i < 300; i++ {
			r.WriteLocal(0, make([]byte, 64))
			r.WriteDMA(0, []byte("payload!"))
			r.Flush() // write barrier
			r.WriteDMA(63, []byte{1})
			for r.Byte(63) == 0 {
				p.Sleep(500 * time.Nanosecond)
			}
			if string(r.ReadLocal(0, 8)) != "payload!" {
				t.Errorf("iteration %d: corruption despite barrier", i)
				return
			}
			p.Sleep(20 * time.Microsecond)
		}
	})
	s.Run()
}

func TestReadDMAActsAsBarrier(t *testing.T) {
	s := newSim()
	r := NewRegion(s, "gpu", 32, Config{Relaxed: true, MaxSkew: time.Second})
	r.WriteDMA(0, []byte{7})
	if got := r.ReadDMA(0, 1); got[0] != 7 {
		t.Fatal("DMA read must observe committed writes")
	}
	if r.PendingWrites() != 0 {
		t.Fatal("DMA read must flush pending writes")
	}
}

func TestPendingVisibilityAdvancesWithClock(t *testing.T) {
	s := newSim()
	r := NewRegion(s, "gpu", 32, Config{Relaxed: true, MaxSkew: 5 * time.Microsecond})
	done := false
	s.Spawn("t", func(p *sim.Proc) {
		r.WriteDMA(0, []byte{9})
		p.Sleep(5 * time.Microsecond) // >= MaxSkew: must be visible now
		if r.Byte(0) != 9 {
			t.Error("write not visible after MaxSkew elapsed")
		}
		done = true
	})
	s.Run()
	if !done {
		t.Fatal("proc did not run")
	}
}

func TestMemoryAllocator(t *testing.T) {
	s := newSim()
	m := NewMemory(s, "gpu0", 1024, true, Config{})
	if !m.BARCapable() || m.Device() != "gpu0" {
		t.Fatal("metadata wrong")
	}
	a := m.MustAlloc("rx", 512)
	if _, err := m.Alloc("rx", 16); err == nil {
		t.Fatal("duplicate name must fail")
	}
	if _, err := m.Alloc("big", 600); err == nil {
		t.Fatal("over-capacity alloc must fail")
	}
	b := m.MustAlloc("tx", 512)
	if m.Used() != 1024 {
		t.Fatalf("used = %d", m.Used())
	}
	a.WriteLocal(0, []byte{1})
	if b.Byte(0) != 0 {
		t.Fatal("regions must not alias")
	}
	if got, ok := m.Region("rx"); !ok || got != a {
		t.Fatal("lookup failed")
	}
	m.Free("rx")
	if m.Used() != 512 {
		t.Fatalf("used after free = %d", m.Used())
	}
	if _, err := m.Alloc("again", 512); err != nil {
		t.Fatalf("alloc after free: %v", err)
	}
}

// Property: on a strongly ordered region, any interleaving of writes yields
// exactly last-writer-wins bytes.
func TestOrderedRegionLastWriterWins(t *testing.T) {
	prop := func(ops []struct {
		Off  uint8
		Val  byte
		Kind bool
	}) bool {
		s := newSim()
		r := NewRegion(s, "r", 256, Config{})
		shadow := make([]byte, 256)
		for _, op := range ops {
			if op.Kind {
				r.WriteLocal(int(op.Off), []byte{op.Val})
			} else {
				r.WriteDMA(int(op.Off), []byte{op.Val})
			}
			shadow[op.Off] = op.Val
		}
		return bytes.Equal(r.ReadLocal(0, 256), shadow)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestWatchFiresOnOverlap(t *testing.T) {
	s := newSim()
	r := NewRegion(s, "r", 128, Config{})
	if r.Name() != "r" {
		t.Fatal("name")
	}
	gate := r.Watch(10, 10)
	v := gate.Version()
	r.WriteLocal(0, make([]byte, 5)) // disjoint
	if gate.Version() != v {
		t.Fatal("disjoint write fired the watcher")
	}
	r.WriteDMA(15, []byte{1}) // overlaps
	if gate.Version() == v {
		t.Fatal("overlapping write did not fire")
	}
	w, rd := r.Stats()
	if w != 2 || rd != 0 {
		t.Fatalf("stats writes=%d reads=%d", w, rd)
	}
}

func TestWatchRelaxedFiresAtVisibility(t *testing.T) {
	s := newSim()
	r := NewRegion(s, "r", 64, Config{Relaxed: true, MaxSkew: 5 * time.Microsecond})
	gate := r.Watch(0, 8)
	var firedAt sim.Time
	s.Spawn("waiter", func(p *sim.Proc) {
		v := gate.Version()
		r.WriteDMA(0, []byte{7})
		gate.Wait(p, v)
		firedAt = p.Now()
		if r.Byte(0) != 7 {
			t.Error("fired before visibility")
		}
	})
	s.Run()
	if firedAt == 0 && sim.Time(0) != firedAt {
		t.Fatal("never fired")
	}
}
