package profile

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"

	"lynx/internal/metrics"
	"lynx/internal/trace"
)

// HistStats is a histogram summary. All times are integer nanoseconds so the
// JSON form is byte-deterministic for a deterministic run.
type HistStats struct {
	Count  uint64 `json:"count"`
	MeanNs int64  `json:"mean_ns"`
	P50Ns  int64  `json:"p50_ns"`
	P90Ns  int64  `json:"p90_ns"`
	P99Ns  int64  `json:"p99_ns"`
	P999Ns int64  `json:"p999_ns"`
	MaxNs  int64  `json:"max_ns"`
}

func histStats(h *metrics.Histogram) HistStats {
	return HistStats{
		Count:  h.Count(),
		MeanNs: int64(h.Mean()),
		P50Ns:  int64(h.Median()),
		P90Ns:  int64(h.P90()),
		P99Ns:  int64(h.P99()),
		P999Ns: int64(h.P999()),
		MaxNs:  int64(h.Max()),
	}
}

// PhaseStats is the wait/service decomposition of one pipeline phase across
// all closed spans: total = wait + service, span by span and in aggregate.
type PhaseStats struct {
	Phase   string    `json:"phase"`
	Total   HistStats `json:"total"`
	Wait    HistStats `json:"wait"`
	Service HistStats `json:"service"`
}

// Bottleneck is one ranked resource in the critical-path report.
type Bottleneck struct {
	// Resource names the ranked resource: "dispatcher", "nic-wire",
	// "accel/<name>", "pcie/<name>".
	Resource string `json:"resource"`
	// Utilization is the mean of the resource's monitor utilization series.
	Utilization float64 `json:"utilization"`
	// QueueSlope is the least-squares growth rate (items/sec) of the queue
	// feeding the resource; positive means the backlog was growing.
	QueueSlope float64 `json:"queue_slope_per_sec"`
	// WaitP99Ns is the p99 of the wait booked against the resource's phase.
	WaitP99Ns int64 `json:"wait_p99_ns"`
	// Score orders the ranking: utilization plus a bounded backlog-growth
	// bonus, so a saturated resource with a growing queue outranks a
	// saturated resource that keeps up.
	Score float64 `json:"score"`
}

// String renders one ranked line, e.g.
// "dispatcher: util 0.97, wait p99 41µs, queue growing".
func (b Bottleneck) String() string {
	trend := "steady"
	switch {
	case b.QueueSlope > slopeTrendEps:
		trend = "growing"
	case b.QueueSlope < -slopeTrendEps:
		trend = "draining"
	}
	return fmt.Sprintf("%s: util %.2f, wait p99 %v, queue %s",
		b.Resource, b.Utilization, time.Duration(b.WaitP99Ns), trend)
}

// ReplPeer is one replica peer's straggler profile: its ack-latency
// distribution, how many write quorums its ack completed (it was the peer
// the held responses waited on), and the gating margin — how far the
// quorum-completing ack trailed the previous ack for the same write.
type ReplPeer struct {
	Peer         string    `json:"peer"`
	Acks         uint64    `json:"acks"`
	GatedQuorums uint64    `json:"gated_quorums"`
	AckLatency   HistStats `json:"ack_latency"`
	GatingMargin HistStats `json:"gating_margin"`
}

// NewReplPeer summarizes one peer's straggler histograms into report form.
// Nil histograms yield zero stats.
func NewReplPeer(peer string, acks, gated uint64, ackLat, gatingMargin *metrics.Histogram) ReplPeer {
	p := ReplPeer{Peer: peer, Acks: acks, GatedQuorums: gated}
	if ackLat != nil {
		p.AckLatency = histStats(ackLat)
	}
	if gatingMargin != nil {
		p.GatingMargin = histStats(gatingMargin)
	}
	return p
}

// SetReplication installs the per-peer straggler ranking: most gated
// quorums first, ties broken by peer name so the order is deterministic.
func (r *Report) SetReplication(peers []ReplPeer) {
	sort.SliceStable(peers, func(i, j int) bool {
		if peers[i].GatedQuorums != peers[j].GatedQuorums {
			return peers[i].GatedQuorums > peers[j].GatedQuorums
		}
		return peers[i].Peer < peers[j].Peer
	})
	r.Replication = peers
}

// SpanPhase is one phase of one recorded span.
type SpanPhase struct {
	Phase     string `json:"phase"`
	TotalNs   int64  `json:"total_ns"`
	WaitNs    int64  `json:"wait_ns"`
	ServiceNs int64  `json:"service_ns"`
}

// SpanRecord is one flight-recorder entry in report form.
type SpanRecord struct {
	ID        uint64      `json:"id"`
	Status    string      `json:"status"`
	Queue     int32       `json:"queue"`
	LatencyNs int64       `json:"latency_ns"`
	Phases    []SpanPhase `json:"phases"`
}

// Report is one run's attribution report. Field order is fixed and all
// values derive from the deterministic simulation, so marshaling it is
// byte-identical across same-seed runs.
type Report struct {
	// SpansBegun/Closed/Evicted mirror the span table's counters.
	SpansBegun   uint64 `json:"spans_begun"`
	SpansClosed  uint64 `json:"spans_closed"`
	SpansEvicted uint64 `json:"spans_evicted"`
	// EndToEnd summarizes client-observed latency over all closed spans.
	EndToEnd HistStats `json:"end_to_end"`
	// Phases is the per-phase wait/service decomposition, in path order.
	Phases []PhaseStats `json:"phases"`
	// Bottlenecks ranks resources most-suspect first.
	Bottlenecks []Bottleneck `json:"bottlenecks"`
	// Replication, for replicated deployments, ranks replica peers by how
	// often their ack gated a write quorum (the straggler ranking); empty
	// and omitted for single-server runs.
	Replication []ReplPeer `json:"replication,omitempty"`
	// Top holds the slowest recorded spans, slowest first.
	Top []SpanRecord `json:"top"`
	// Recent holds the most recently closed spans, oldest first.
	Recent []SpanRecord `json:"recent"`
	// Trigger names the invariant violation that forced this dump, empty for
	// on-demand reports.
	Trigger string `json:"trigger,omitempty"`
}

// Build assembles a report from a span table, an optional flight recorder,
// and an optional metrics registry (bottlenecks need the monitor's series;
// without a registry the ranking is empty). All inputs are nil-safe.
func Build(spans *trace.SpanTable, rec *Recorder, reg *metrics.Registry) *Report {
	r := &Report{}
	if spans != nil {
		r.SpansBegun = spans.Begun()
		r.SpansClosed = spans.Closed()
		r.SpansEvicted = spans.Evicted()
		r.EndToEnd = histStats(spans.EndToEnd())
		for p := trace.PhaseNetwork; p < trace.NumPhases; p++ {
			r.Phases = append(r.Phases, PhaseStats{
				Phase:   p.String(),
				Total:   histStats(spans.PhaseHist(p)),
				Wait:    histStats(spans.PhaseWaitHist(p)),
				Service: histStats(spans.PhaseServiceHist(p)),
			})
		}
	}
	r.Bottlenecks = buildBottlenecks(spans, reg)
	for _, e := range rec.Top() {
		r.Top = append(r.Top, makeSpanRecord(e))
	}
	for _, e := range rec.Recent() {
		r.Recent = append(r.Recent, makeSpanRecord(e))
	}
	return r
}

func makeSpanRecord(e Entry) SpanRecord {
	rec := SpanRecord{
		ID:        e.Span.ID,
		Status:    e.Span.Status.String(),
		Queue:     e.Span.Queue,
		LatencyNs: int64(e.Latency),
	}
	if ph, ok := e.Span.Phases(); ok {
		rec.Phases = make([]SpanPhase, 0, trace.NumPhases)
		for p := trace.PhaseNetwork; p < trace.NumPhases; p++ {
			w := e.Span.WaitIn(p)
			rec.Phases = append(rec.Phases, SpanPhase{
				Phase:     p.String(),
				TotalNs:   int64(ph[p]),
				WaitNs:    int64(w),
				ServiceNs: int64(ph[p] - w),
			})
		}
	}
	return rec
}

// slopeTrendEps separates "growing"/"draining" from sampling noise when
// rendering a trend (items per second).
const slopeTrendEps = 1.0

// slopeBonus maps a queue-growth slope into a bounded score bonus: a growing
// backlog breaks utilization ties in favour of the resource that is falling
// behind, without ever dominating a large utilization gap.
func slopeBonus(slope float64) float64 {
	return 0.1 * slope / (1 + math.Abs(slope))
}

func buildBottlenecks(spans *trace.SpanTable, reg *metrics.Registry) []Bottleneck {
	if reg == nil {
		return nil
	}
	var out []Bottleneck
	add := func(resource, utilSeries, queueSeries string, waitPhase trace.Phase) {
		u, ok := seriesMean(reg, utilSeries)
		if !ok {
			return
		}
		slope := seriesSlope(reg, queueSeries)
		var p99 int64
		if spans != nil {
			p99 = int64(spans.PhaseWaitHist(waitPhase).P99())
		}
		out = append(out, Bottleneck{
			Resource:    resource,
			Utilization: u,
			QueueSlope:  slope,
			WaitP99Ns:   p99,
			Score:       u + slopeBonus(slope),
		})
	}
	// The dispatcher is the serialized stack/dispatch section (one core at a
	// time); the aggregate worker pool is ranked separately as snic-cores.
	add("dispatcher", "snic/dispatch-util", "snic/backlog", trace.PhaseSNIC)
	add("snic-cores", "snic/core-util", "snic/backlog", trace.PhaseSNIC)
	add("nic-wire", "net/wire-util", "", trace.PhaseNetwork)
	// Replicated deployments publish ingest-ring occupancy; the wait booked
	// against it is the quorum hold. Absent for single-server runs, so
	// their rankings are unchanged.
	add("replication", "repl/ingest-occupancy", "repl/held", trace.PhaseReplication)
	for _, s := range reg.SeriesList() {
		if n, ok := seriesResource(s.Name(), "accel/", "/sm-util"); ok {
			// RX-ring residency (PhaseQueueing) is what grows when the
			// accelerator cannot keep up, so that is the wait booked here.
			add("accel/"+n, s.Name(), "mq/"+n+"/inflight", trace.PhaseQueueing)
		} else if n, ok := seriesResource(s.Name(), "pcie/", "/link-util"); ok {
			add("pcie/"+n, s.Name(), "", trace.PhaseTransfer)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Resource < out[j].Resource
	})
	return out
}

func seriesResource(name, prefix, suffix string) (string, bool) {
	if strings.HasPrefix(name, prefix) && strings.HasSuffix(name, suffix) {
		return name[len(prefix) : len(name)-len(suffix)], true
	}
	return "", false
}

func findSeries(reg *metrics.Registry, name string) *metrics.Series {
	for _, s := range reg.SeriesList() {
		if s.Name() == name {
			return s
		}
	}
	return nil
}

// seriesMean returns the plain mean of a series' retained samples, false
// when the series is missing or empty.
func seriesMean(reg *metrics.Registry, name string) (float64, bool) {
	s := findSeries(reg, name)
	if s == nil || s.Len() == 0 {
		return 0, false
	}
	var sum float64
	pts := s.Points()
	for _, p := range pts {
		sum += p.V
	}
	return sum / float64(len(pts)), true
}

// seriesSlope least-squares-fits the retained samples and returns the growth
// rate per second; zero for missing series or fewer than two samples.
func seriesSlope(reg *metrics.Registry, name string) float64 {
	if name == "" {
		return 0
	}
	s := findSeries(reg, name)
	if s == nil || s.Len() < 2 {
		return 0
	}
	pts := s.Points()
	n := float64(len(pts))
	var sx, sy, sxx, sxy float64
	for _, p := range pts {
		x := p.At.Seconds()
		sx += x
		sy += p.V
		sxx += x * x
		sxy += x * p.V
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0
	}
	return (n*sxy - sx*sy) / den
}

// WriteJSON writes the report as indented JSON. Field order is fixed and all
// inputs are deterministic, so same-seed runs produce byte-identical output.
func (r *Report) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r, "", " ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// BottleneckSummary renders the ranked bottleneck list, one line each,
// most-suspect first.
func (r *Report) BottleneckSummary() string {
	var b strings.Builder
	for i, bk := range r.Bottlenecks {
		fmt.Fprintf(&b, "%d. %s\n", i+1, bk)
	}
	return b.String()
}

// Rank returns the 1-based rank of a resource in the bottleneck list, or 0
// when absent.
func (r *Report) Rank(resource string) int {
	for i, b := range r.Bottlenecks {
		if b.Resource == resource {
			return i + 1
		}
	}
	return 0
}
