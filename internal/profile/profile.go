package profile

import (
	"os"
	"sync"

	"lynx/internal/check"
	"lynx/internal/metrics"
	"lynx/internal/trace"
)

// Options sizes a Profile. Zero values pick defaults.
type Options struct {
	// SpanCapacity bounds the span table ring (default 1<<14).
	SpanCapacity int
	// TopK bounds the flight recorder's slowest-span heap (default 16).
	TopK int
	// RingCap bounds the flight recorder's recency ring (default 64).
	RingCap int
}

// Profile bundles the three attribution inputs — span table, flight
// recorder, metrics registry — for one simulated cluster, so callers arm
// profiling with one object and pull one report out.
type Profile struct {
	spans *trace.SpanTable
	rec   *Recorder
	reg   *metrics.Registry

	mu      sync.Mutex
	trigger string
}

// New creates a profile with a fresh span table, recorder and registry, with
// the recorder already attached to the table.
func New(opts Options) *Profile {
	cap := opts.SpanCapacity
	if cap <= 0 {
		cap = 1 << 14
	}
	return Assemble(trace.NewSpanTable(cap), NewRecorder(opts.TopK, opts.RingCap), metrics.NewRegistry())
}

// Assemble bundles existing pieces (any may be nil) and attaches the
// recorder to the span table.
func Assemble(spans *trace.SpanTable, rec *Recorder, reg *metrics.Registry) *Profile {
	rec.Attach(spans)
	return &Profile{spans: spans, rec: rec, reg: reg}
}

// Spans returns the span table (give this to the platform/workload configs).
func (p *Profile) Spans() *trace.SpanTable {
	if p == nil {
		return nil
	}
	return p.spans
}

// Recorder returns the flight recorder.
func (p *Profile) Recorder() *Recorder {
	if p == nil {
		return nil
	}
	return p.rec
}

// Registry returns the metrics registry (give this to StartMonitor).
func (p *Profile) Registry() *metrics.Registry {
	if p == nil {
		return nil
	}
	return p.reg
}

// Report builds the attribution report from the profile's current state.
// Nil-safe: a nil profile reports empty.
func (p *Profile) Report() *Report {
	if p == nil {
		return &Report{}
	}
	r := Build(p.spans, p.rec, p.reg)
	p.mu.Lock()
	r.Trigger = p.trigger
	p.mu.Unlock()
	return r
}

// WriteFile dumps the current report as JSON to path. Nil-safe: a nil
// profile writes nothing and reports success.
func (p *Profile) WriteFile(path string) error {
	if p == nil {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := p.Report().WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ArmPostmortem hooks the checker so the first invariant violation dumps a
// flight-recorder report to path, with Trigger set to the violation. The dump
// happens at violation time, so the report captures the state that tripped
// the invariant rather than whatever the run drained down to. Nil-safe.
func (p *Profile) ArmPostmortem(ck *check.Checker, path string) {
	if p == nil || !ck.Enabled() || path == "" {
		return
	}
	ck.SetOnViolation(func(v check.Violation) {
		p.mu.Lock()
		p.trigger = v.String()
		p.mu.Unlock()
		// Best-effort: a postmortem dump failing must not take down the run.
		_ = p.WriteFile(path)
	})
}
