package profile

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"lynx/internal/check"
	"lynx/internal/metrics"
	"lynx/internal/sim"
	"lynx/internal/trace"
)

// closeSpan drives one complete span of the given end-to-end latency (ns)
// through the table, with a fixed fraction of the queueing phase as wait.
func closeSpan(tb *trace.SpanTable, id uint64, lat sim.Time) {
	tb.Begin(id, 0)
	tb.Stamp(id, trace.StageSnicRecv, lat/8)
	tb.Stamp(id, trace.StageDispatch, lat/4)
	tb.Stamp(id, trace.StagePushed, lat/3)
	tb.Stamp(id, trace.StageAccelRecv, lat/2)
	tb.Stamp(id, trace.StageAccelSent, lat*3/4)
	tb.Stamp(id, trace.StageDrain, lat*4/5)
	tb.Stamp(id, trace.StageForward, lat*9/10)
	tb.AddWait(id, trace.PhaseQueueing, time.Duration(lat/8))
	tb.Close(id, trace.SpanDone, lat)
}

func TestRecorderTopAndRecent(t *testing.T) {
	tb := trace.NewSpanTable(64)
	rec := NewRecorder(3, 4)
	rec.Attach(tb)

	lats := []sim.Time{5000, 1000, 9000, 3000, 7000, 2000}
	for i, lat := range lats {
		closeSpan(tb, uint64(i+1), lat)
	}
	if rec.Observed() != uint64(len(lats)) {
		t.Fatalf("observed = %d, want %d", rec.Observed(), len(lats))
	}

	top := rec.Top()
	if len(top) != 3 {
		t.Fatalf("top has %d entries, want 3", len(top))
	}
	wantIDs := []uint64{3, 5, 1} // latencies 9000, 7000, 5000
	for i, want := range wantIDs {
		if top[i].Span.ID != want {
			t.Errorf("top[%d] = span %d (%v), want span %d", i, top[i].Span.ID, top[i].Latency, want)
		}
	}
	if top[0].Latency != 9*time.Microsecond {
		t.Errorf("slowest latency = %v, want 9µs", top[0].Latency)
	}

	recent := rec.Recent()
	if len(recent) != 4 {
		t.Fatalf("recent has %d entries, want ring cap 4", len(recent))
	}
	for i, want := range []uint64{3, 4, 5, 6} { // chronological, last 4
		if recent[i].Span.ID != want {
			t.Errorf("recent[%d] = span %d, want %d", i, recent[i].Span.ID, want)
		}
	}
}

// TestRecorderDeterministicTies: equal latencies break on span ID, so two
// identically fed recorders agree exactly.
func TestRecorderDeterministicTies(t *testing.T) {
	build := func() []Entry {
		tb := trace.NewSpanTable(64)
		rec := NewRecorder(4, 8)
		rec.Attach(tb)
		for id := uint64(1); id <= 10; id++ {
			closeSpan(tb, id, 4000) // all tie
		}
		return rec.Top()
	}
	a, b := build(), build()
	if len(a) != 4 || len(b) != 4 {
		t.Fatalf("top sizes %d/%d, want 4", len(a), len(b))
	}
	for i := range a {
		if a[i].Span.ID != b[i].Span.ID {
			t.Fatalf("tie order diverged at %d: %d vs %d", i, a[i].Span.ID, b[i].Span.ID)
		}
	}
}

// TestRecorderIgnoresIncomplete: spans without a full trajectory never reach
// the recorder (the table only notifies on complete SpanDone closes).
func TestRecorderIgnoresIncomplete(t *testing.T) {
	tb := trace.NewSpanTable(64)
	rec := NewRecorder(4, 8)
	rec.Attach(tb)
	tb.Begin(1, 0)
	tb.Close(1, trace.SpanDropped, 100)
	tb.Begin(2, 0)
	tb.Close(2, trace.SpanDone, 100) // done but no service stages
	if rec.Observed() != 0 {
		t.Fatalf("recorder observed %d incomplete spans", rec.Observed())
	}
}

// monitorFixture populates a registry with the series the bottleneck ranking
// reads, shaped so the dispatcher dominates.
func monitorFixture(reg *metrics.Registry) {
	add := func(name string, vals ...float64) {
		s := reg.NewSeries(name, 64)
		for i, v := range vals {
			s.Add(time.Duration(i)*time.Millisecond, v)
		}
	}
	add("snic/dispatch-util", 0.9, 0.95, 0.97)
	add("snic/core-util", 0.35, 0.4, 0.38)
	add("snic/backlog", 10, 60, 120) // growing
	add("net/wire-util", 0.05, 0.05, 0.05)
	add("accel/gpu0/sm-util", 0.2, 0.2, 0.2)
	add("mq/gpu0/inflight", 4, 4, 4)
	add("pcie/gpu0/link-util", 0.02, 0.02, 0.02)
}

func TestBuildBottleneckRanking(t *testing.T) {
	tb := trace.NewSpanTable(64)
	rec := NewRecorder(4, 8)
	rec.Attach(tb)
	for id := uint64(1); id <= 20; id++ {
		closeSpan(tb, id, sim.Time(1000*id))
	}
	reg := metrics.NewRegistry()
	monitorFixture(reg)

	rep := Build(tb, rec, reg)
	if rep.SpansClosed != 20 || rep.EndToEnd.Count != 20 {
		t.Fatalf("spans closed %d / e2e count %d, want 20", rep.SpansClosed, rep.EndToEnd.Count)
	}
	if len(rep.Bottlenecks) != 5 {
		t.Fatalf("bottlenecks = %d, want 5 (dispatcher, snic-cores, nic-wire, accel, pcie)", len(rep.Bottlenecks))
	}
	if rep.Bottlenecks[0].Resource != "dispatcher" {
		t.Fatalf("top bottleneck = %q, want dispatcher\n%s", rep.Bottlenecks[0].Resource, rep.BottleneckSummary())
	}
	if rep.Rank("dispatcher") != 1 {
		t.Errorf("Rank(dispatcher) = %d, want 1", rep.Rank("dispatcher"))
	}
	if rep.Rank("no-such-resource") != 0 {
		t.Errorf("Rank of unknown resource = %d, want 0", rep.Rank("no-such-resource"))
	}
	for i := 1; i < len(rep.Bottlenecks); i++ {
		if rep.Bottlenecks[i].Score > rep.Bottlenecks[i-1].Score {
			t.Fatalf("scores not descending at %d:\n%s", i, rep.BottleneckSummary())
		}
	}
	if s := rep.Bottlenecks[0].String(); !strings.Contains(s, "growing") {
		t.Errorf("dispatcher line %q should report a growing queue", s)
	}

	// Per-phase identity survives aggregation into the report.
	for _, ps := range rep.Phases {
		if ps.Total.Count != ps.Wait.Count || ps.Total.Count != ps.Service.Count {
			t.Fatalf("phase %s count mismatch", ps.Phase)
		}
	}
}

// TestBuildEmptyRegistry: with no monitor series, the report still builds
// (no bottlenecks, phases from the span table alone).
func TestBuildEmptyRegistry(t *testing.T) {
	tb := trace.NewSpanTable(8)
	closeSpan(tb, 1, 1000)
	rep := Build(tb, NewRecorder(2, 2), metrics.NewRegistry())
	if len(rep.Bottlenecks) != 0 {
		t.Fatalf("bottlenecks from empty registry: %v", rep.Bottlenecks)
	}
	if rep.SpansClosed != 1 {
		t.Fatalf("spans closed = %d", rep.SpansClosed)
	}
	// Fully nil inputs also build.
	if rep := Build(nil, nil, nil); rep == nil || rep.SpansClosed != 0 {
		t.Fatal("nil inputs should build an empty report")
	}
}

// TestReportJSONDeterministic: identical inputs serialize byte-identically,
// and the JSON carries the documented top-level schema.
func TestReportJSONDeterministic(t *testing.T) {
	render := func() []byte {
		tb := trace.NewSpanTable(64)
		rec := NewRecorder(4, 8)
		rec.Attach(tb)
		for id := uint64(1); id <= 10; id++ {
			closeSpan(tb, id, sim.Time(500*id))
		}
		reg := metrics.NewRegistry()
		monitorFixture(reg)
		var buf bytes.Buffer
		if err := Build(tb, rec, reg).WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Fatal("identical runs produced different JSON")
	}
	var m map[string]any
	if err := json.Unmarshal(a, &m); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	for _, key := range []string{"spans_begun", "spans_closed", "end_to_end", "phases", "bottlenecks", "top", "recent"} {
		if _, ok := m[key]; !ok {
			t.Errorf("JSON missing %q", key)
		}
	}
}

// TestProfileBundle: the Profile convenience owns all three pieces and its
// accessors are nil-safe.
func TestProfileBundle(t *testing.T) {
	p := New(Options{SpanCapacity: 32, TopK: 2, RingCap: 4})
	closeSpan(p.Spans(), 1, 2000)
	rep := p.Report()
	if rep.SpansClosed != 1 {
		t.Fatalf("spans closed = %d", rep.SpansClosed)
	}
	if len(rep.Top) != 1 {
		t.Fatalf("flight recorder missed the span: %d", len(rep.Top))
	}

	var nilProf *Profile
	if nilProf.Spans() != nil || nilProf.Recorder() != nil || nilProf.Registry() != nil {
		t.Fatal("nil profile accessors must return nil")
	}
	if rep := nilProf.Report(); rep == nil || rep.SpansClosed != 0 {
		t.Fatal("nil profile must report empty")
	}
	if err := nilProf.WriteFile(filepath.Join(t.TempDir(), "never.json")); err != nil {
		t.Fatalf("nil WriteFile: %v", err)
	}
}

// TestArmPostmortem: the first invariant violation dumps the report with the
// violation as trigger; later violations do not rewrite it.
func TestArmPostmortem(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "post.json")
	p := New(Options{SpanCapacity: 32})
	closeSpan(p.Spans(), 1, 2000)

	ck := check.New()
	p.ArmPostmortem(ck, path)
	ck.Failf("test.kind", "conservation off by %d", 3)
	closeSpan(p.Spans(), 2, 9000) // after the dump: must not appear in it
	ck.Failf("test.other", "second violation")

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("postmortem not written: %v", err)
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("postmortem not valid JSON: %v", err)
	}
	if !strings.Contains(rep.Trigger, "conservation off by 3") {
		t.Errorf("trigger = %q, want the first violation", rep.Trigger)
	}
	if rep.SpansClosed != 1 {
		t.Errorf("postmortem captured %d spans, want the state at violation time (1)", rep.SpansClosed)
	}
	// Live reports after the violation also carry the trigger.
	if live := p.Report(); !strings.Contains(live.Trigger, "conservation") {
		t.Errorf("live report trigger = %q", live.Trigger)
	}

	// Unarmed combinations are no-ops.
	var nilProf *Profile
	nilProf.ArmPostmortem(ck, path)
	p.ArmPostmortem(nil, path)
	p.ArmPostmortem(ck, "")
}
