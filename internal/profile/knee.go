package profile

import (
	"fmt"

	"lynx/internal/metrics"
)

// KneeEstimate is a predicted saturation point extrapolated from a single
// low-load probe run. The model is the standard open-system argument: a
// work-conserving bottleneck resource observed at mean utilization u while
// absorbing offered load r reaches full utilization near r/u requests per
// second, because its busy fraction grows linearly in offered load. The
// usable knee sits earlier, at the onset of queueing blow-up — beyond
// ~kneeUtilization busy fraction, waiting time diverges and goodput flattens
// or degrades (measured on this simulator: the BlueField echo deployment's
// goodput peaks where dispatcher utilization crosses ~0.84 and declines past
// it) — so the estimate is kneeUtilization·r/u. If the probe's own
// queue-growth slope is already positive the system is at or past the knee
// and the probe rate itself is the estimate.
type KneeEstimate struct {
	// Valid reports whether the inputs supported an estimate; when false,
	// Reason says why and PredictedPerSec is zero.
	Valid  bool   `json:"valid"`
	Reason string `json:"reason,omitempty"`
	// Resource is the bottleneck the extrapolation pivots on — the
	// highest-utilization resource of the probe run.
	Resource string `json:"resource,omitempty"`
	// Utilization is that resource's mean utilization at the probe load.
	Utilization float64 `json:"utilization"`
	// QueueSlope is the growth rate (items/sec) of the queue feeding it.
	QueueSlope float64 `json:"queue_slope_per_sec"`
	// ProbePerSec is the offered load of the probe run.
	ProbePerSec float64 `json:"probe_per_sec"`
	// PredictedPerSec is the extrapolated saturation throughput.
	PredictedPerSec float64 `json:"predicted_per_sec"`
}

// String renders the estimate for reports, e.g.
// "knee ≈ 310000 req/s (probe 100000 req/s, dispatcher util 0.32)".
func (k KneeEstimate) String() string {
	if !k.Valid {
		return "knee unpredictable: " + k.Reason
	}
	return fmt.Sprintf("knee ≈ %.0f req/s (probe %.0f req/s, %s util %.2f)",
		k.PredictedPerSec, k.ProbePerSec, k.Resource, k.Utilization)
}

// kneeUtilization is the bottleneck busy fraction the knee is pinned to:
// waiting time in an open system diverges as utilization approaches 1, and
// the goodput curve's bend — the knee operators care about — lands around
// 85% busy for the service-time variability this stack exhibits.
const kneeUtilization = 0.85

// kneeUtilFloor is the minimum mean utilization an estimate may pivot on.
// Below it the measurement is dominated by sampling noise and fixed
// per-request costs, and the r/u extrapolation explodes meaninglessly.
const kneeUtilFloor = 0.02

// kneeSlopeEps separates genuine probe-time backlog growth from least-squares
// jitter (items per second), same scale as slopeTrendEps.
const kneeSlopeEps = 1.0

// PredictKnee extrapolates the saturation knee from one low-load run's
// monitor series. probePerSec is the offered load of that run. The registry
// is scanned with the same resource taxonomy as the bottleneck ranking
// (dispatcher, SNIC core pool, NIC wire, replication ingest occupancy,
// per-accelerator SMs, per-device PCIe links); the estimate pivots on the
// highest mean utilization found.
func PredictKnee(reg *metrics.Registry, probePerSec float64) KneeEstimate {
	if probePerSec <= 0 {
		return KneeEstimate{Reason: "probe rate not positive"}
	}
	var bns []Bottleneck
	if reg != nil {
		bns = buildBottlenecks(nil, reg)
	}
	if len(bns) == 0 {
		return KneeEstimate{Reason: "no utilization series in registry", ProbePerSec: probePerSec}
	}
	// Pivot on the highest mean utilization: it bounds throughput first, so
	// r/u there is the minimum — i.e. the — knee. buildBottlenecks already
	// tie-breaks deterministically; scan keeps the first maximum.
	best := bns[0]
	for _, b := range bns[1:] {
		if b.Utilization > best.Utilization {
			best = b
		}
	}
	k := KneeEstimate{
		Resource:    best.Resource,
		Utilization: best.Utilization,
		QueueSlope:  best.QueueSlope,
		ProbePerSec: probePerSec,
	}
	if best.Utilization < kneeUtilFloor {
		k.Reason = fmt.Sprintf("utilization %.3f below noise floor %.2f", best.Utilization, kneeUtilFloor)
		return k
	}
	k.Valid = true
	if best.QueueSlope > kneeSlopeEps {
		// The backlog is already growing at the probe load: the system is at
		// or past its knee, and extrapolating beyond the probe would claim
		// capacity the queue says is not there.
		k.PredictedPerSec = probePerSec
		return k
	}
	k.PredictedPerSec = kneeUtilization * probePerSec / best.Utilization
	return k
}
