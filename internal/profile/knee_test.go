package profile

import (
	"math"
	"strings"
	"testing"
	"time"

	"lynx/internal/metrics"
)

// utilReg builds a registry with one dispatcher-utilization series holding
// the given samples at 50µs spacing, plus a backlog series with the given
// values.
func utilReg(util []float64, backlog []float64) *metrics.Registry {
	reg := metrics.NewRegistry()
	u := reg.NewSeries("snic/dispatch-util", 1024)
	for i, v := range util {
		u.Add(time.Duration(i)*50*time.Microsecond, v)
	}
	b := reg.NewSeries("snic/backlog", 1024)
	for i, v := range backlog {
		b.Add(time.Duration(i)*50*time.Microsecond, v)
	}
	return reg
}

func TestPredictKneeLinearExtrapolation(t *testing.T) {
	// Flat 0.25 utilization at 100K req/s: full busy at 400K, knee at 85%.
	reg := utilReg([]float64{0.25, 0.25, 0.25, 0.25}, []float64{3, 3, 3, 3})
	k := PredictKnee(reg, 100e3)
	if !k.Valid {
		t.Fatalf("estimate invalid: %s", k.Reason)
	}
	if k.Resource != "dispatcher" {
		t.Fatalf("pivoted on %q, want dispatcher", k.Resource)
	}
	want := kneeUtilization * 100e3 / 0.25
	if math.Abs(k.PredictedPerSec-want) > 1 {
		t.Fatalf("predicted %.0f, want %.0f", k.PredictedPerSec, want)
	}
	if !strings.Contains(k.String(), "dispatcher") {
		t.Fatalf("String() omits the pivot: %q", k.String())
	}
}

func TestPredictKneePivotsOnHighestUtilization(t *testing.T) {
	reg := utilReg([]float64{0.10, 0.10}, nil)
	sm := reg.NewSeries("accel/gpu0/sm-util", 16)
	sm.Add(0, 0.50)
	sm.Add(50*time.Microsecond, 0.50)
	k := PredictKnee(reg, 100e3)
	if !k.Valid || k.Resource != "accel/gpu0" {
		t.Fatalf("pivot = %q (valid=%v), want accel/gpu0", k.Resource, k.Valid)
	}
}

func TestPredictKneeGrowingQueueCapsAtProbe(t *testing.T) {
	// Backlog growing 4 items per 50µs = 80000/s: already past the knee.
	reg := utilReg([]float64{0.5, 0.5, 0.5}, []float64{0, 4, 8})
	k := PredictKnee(reg, 100e3)
	if !k.Valid {
		t.Fatalf("estimate invalid: %s", k.Reason)
	}
	if k.PredictedPerSec != 100e3 {
		t.Fatalf("growing queue must cap the estimate at the probe rate, got %.0f", k.PredictedPerSec)
	}
}

func TestPredictKneeEdgeCases(t *testing.T) {
	flat := utilReg([]float64{0.25}, nil) // single-point series still works
	if k := PredictKnee(flat, 100e3); !k.Valid || math.Abs(k.PredictedPerSec-kneeUtilization*400e3) > 1 {
		t.Fatalf("single-point series: %+v", k)
	}
	cases := []struct {
		name   string
		reg    *metrics.Registry
		rate   float64
		reason string
	}{
		{"nil registry", nil, 100e3, "no utilization series"},
		{"empty registry", metrics.NewRegistry(), 100e3, "no utilization series"},
		{"empty series", utilReg(nil, nil), 100e3, "no utilization series"},
		{"zero rate", utilReg([]float64{0.5}, nil), 0, "probe rate not positive"},
		{"negative rate", utilReg([]float64{0.5}, nil), -1, "probe rate not positive"},
		{"flat zero utilization", utilReg([]float64{0, 0, 0}, nil), 100e3, "below noise floor"},
		{"sub-floor utilization", utilReg([]float64{0.01, 0.01}, nil), 100e3, "below noise floor"},
	}
	for _, c := range cases {
		k := PredictKnee(c.reg, c.rate)
		if k.Valid {
			t.Fatalf("%s: estimate unexpectedly valid: %+v", c.name, k)
		}
		if !strings.Contains(k.Reason, c.reason) {
			t.Fatalf("%s: reason %q does not mention %q", c.name, k.Reason, c.reason)
		}
		if k.PredictedPerSec != 0 {
			t.Fatalf("%s: invalid estimate carries a prediction %.0f", c.name, k.PredictedPerSec)
		}
		if !strings.Contains(k.String(), "unpredictable") {
			t.Fatalf("%s: String() = %q", c.name, k.String())
		}
	}
}
