// Package profile is the tail-latency attribution engine: it layers on the
// span table (internal/trace) and the monitor's sampled series
// (internal/metrics) to answer "where did the p99 go?". Three pieces:
//
//   - wait/service decomposition: every closed span splits each of its five
//     phases into queue-waiting and in-service time (stamped at the four
//     queueing points: netstack rx queue, dispatcher inbox, mqueue rings,
//     MQ-manager drain), aggregated into per-stage histograms.
//   - bottleneck ranking: per run, each resource's utilization (SNIC cores,
//     GPU SMs, PCIe links, NIC wire) is paired with the growth slope of the
//     queue feeding it and the p99 wait booked against it, producing a
//     ranked report of what is actually limiting the run.
//   - flight recorder: a bounded top-k heap of the slowest completed
//     requests plus a recency ring, with their full stamp vectors, dumped as
//     JSON on demand or automatically when a runtime invariant fires.
//
// Everything here is derived from counters and stamps the simulation already
// maintains; when profiling is disabled nothing in this package is on the
// hot path at all.
package profile

import (
	"sort"
	"sync"
	"time"

	"lynx/internal/trace"
)

// Entry is one completed request held by the flight recorder.
type Entry struct {
	// Span is a copy of the request's full stamp vector at close time.
	Span trace.Span
	// Latency is the end-to-end client-send to client-recv time.
	Latency time.Duration
}

// Recorder is the flight recorder: a bounded min-heap keeping the k slowest
// completed spans and a ring keeping the most recent ones. Both are
// preallocated, so observing a span never allocates; the span table's close
// path stays alloc-free with profiling enabled.
type Recorder struct {
	mu       sync.Mutex
	heap     []Entry // min-heap on (Latency, ID): root is cheapest to evict
	ring     []Entry // recency ring, chronological from next
	next     int
	wrapped  bool
	observed uint64
}

// NewRecorder creates a recorder keeping the topK slowest and ringCap most
// recent spans (defaults 16 and 64 for non-positive arguments).
func NewRecorder(topK, ringCap int) *Recorder {
	if topK <= 0 {
		topK = 16
	}
	if ringCap <= 0 {
		ringCap = 64
	}
	return &Recorder{
		heap: make([]Entry, 0, topK),
		ring: make([]Entry, 0, ringCap),
	}
}

// Attach subscribes the recorder to every span the table closes complete.
// Nil-safe on both sides.
func (r *Recorder) Attach(t *trace.SpanTable) {
	if r == nil || t == nil {
		return
	}
	t.SetOnDone(r.Observe)
}

// Observe records one completed span. The pointee is only valid for the
// duration of the call (SpanTable slots are a ring), so it is copied.
func (r *Recorder) Observe(s *trace.Span) {
	lat, ok := s.Latency(trace.StageClientSend, trace.StageClientRecv)
	if !ok {
		return
	}
	e := Entry{Span: *s, Latency: time.Duration(lat)}
	r.mu.Lock()
	r.observed++
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, e)
	} else {
		r.ring[r.next] = e
		r.wrapped = true
	}
	r.next = (r.next + 1) % cap(r.ring)
	if len(r.heap) < cap(r.heap) {
		r.heap = append(r.heap, e)
		r.siftUp(len(r.heap) - 1)
	} else if entryLess(r.heap[0], e) {
		r.heap[0] = e
		r.siftDown(0)
	}
	r.mu.Unlock()
}

// entryLess orders by latency then span ID, so heap eviction (and therefore
// the retained top-k set) is deterministic even under latency ties.
func entryLess(a, b Entry) bool {
	if a.Latency != b.Latency {
		return a.Latency < b.Latency
	}
	return a.Span.ID < b.Span.ID
}

func (r *Recorder) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !entryLess(r.heap[i], r.heap[p]) {
			return
		}
		r.heap[i], r.heap[p] = r.heap[p], r.heap[i]
		i = p
	}
}

func (r *Recorder) siftDown(i int) {
	n := len(r.heap)
	for {
		l, m := 2*i+1, i
		if l < n && entryLess(r.heap[l], r.heap[m]) {
			m = l
		}
		if rt := l + 1; rt < n && entryLess(r.heap[rt], r.heap[m]) {
			m = rt
		}
		if m == i {
			return
		}
		r.heap[i], r.heap[m] = r.heap[m], r.heap[i]
		i = m
	}
}

// Top returns the retained slowest spans, slowest first (ties broken by span
// ID ascending, so the order is deterministic per seed).
func (r *Recorder) Top() []Entry {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := append([]Entry(nil), r.heap...)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return entryLess(out[j], out[i]) })
	return out
}

// Recent returns the recency ring in chronological close order.
func (r *Recorder) Recent() []Entry {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Entry, 0, len(r.ring))
	if r.wrapped {
		out = append(out, r.ring[r.next:]...)
		return append(out, r.ring[:r.next]...)
	}
	return append(out, r.ring...)
}

// Observed reports how many completed spans the recorder has seen.
func (r *Recorder) Observed() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.observed
}

// TopK reports the heap bound.
func (r *Recorder) TopK() int {
	if r == nil {
		return 0
	}
	return cap(r.heap)
}
