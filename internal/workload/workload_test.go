package workload

import (
	"strings"
	"testing"
	"time"

	"lynx/internal/metrics"
	"lynx/internal/model"
	"lynx/internal/netstack"
	"lynx/internal/sim"
)

func metricsNewHistogram() *metrics.Histogram { return metrics.NewHistogram() }

// echoService runs a UDP and a TCP echo server with a fixed service time.
func echoService(s *sim.Sim, host *netstack.Host, service time.Duration) {
	sock := host.MustUDPBind(7000)
	s.Spawn("srv/udp", func(p *sim.Proc) {
		for {
			dg := sock.Recv(p)
			if service > 0 {
				p.Sleep(service)
			}
			sock.SendTo(dg.From, dg.Payload)
		}
	})
	l := host.MustTCPListen(7000)
	s.Spawn("srv/tcp", func(p *sim.Proc) {
		for {
			conn := l.Accept(p)
			s.Spawn("srv/tcp-conn", func(p *sim.Proc) {
				for {
					msg, err := conn.Recv(p)
					if err != nil {
						return
					}
					if service > 0 {
						p.Sleep(service)
					}
					if conn.Send(p, msg) != nil {
						return
					}
				}
			})
		}
	})
}

func newNet(seed uint64) (*sim.Sim, *netstack.Network) {
	s := sim.New(sim.Config{Seed: seed})
	p := model.Default()
	return s, netstack.New(s, &p)
}

func TestSeqHelpers(t *testing.T) {
	buf := make([]byte, 16)
	PutSeq(buf, 0xDEADBEEF)
	if v, ok := Seq(buf); !ok || v != 0xDEADBEEF {
		t.Fatalf("seq round trip: %v %v", v, ok)
	}
	if _, ok := Seq([]byte{1, 2}); ok {
		t.Fatal("short message must not parse")
	}
}

func TestClosedLoopUDPMeasuresServiceTime(t *testing.T) {
	s, n := newNet(1)
	srv := n.AddHost("server")
	cli := n.AddHost("client")
	const service = 100 * time.Microsecond
	echoService(s, srv, service)
	g := New(s, Config{
		Proto: UDP, Target: srv.Addr(7000), Payload: 64,
		Clients: 1, Duration: 20 * time.Millisecond, Warmup: 2 * time.Millisecond,
	}, cli)
	res := RunFor(s, g)
	s.Shutdown()
	if res.Received < 100 {
		t.Fatalf("only %d responses", res.Received)
	}
	med := res.Hist.Median()
	if med < service || med > service+20*time.Microsecond {
		t.Fatalf("median %v, want ~service %v + wire", med, service)
	}
	// Closed loop with 1 client: throughput ≈ 1/latency.
	want := 1 / med.Seconds()
	if tp := res.Throughput(); tp < want*0.8 || tp > want*1.2 {
		t.Fatalf("throughput %.0f, want ~%.0f", tp, want)
	}
	if res.Lost != 0 {
		t.Fatalf("lost %d on a lossless path", res.Lost)
	}
}

func TestClosedLoopConcurrencyScalesThroughput(t *testing.T) {
	run := func(clients int) float64 {
		s, n := newNet(2)
		srv := n.AddHost("server")
		cli := n.AddHost("client")
		// A parallel server: each request sleeps independently.
		sock := srv.MustUDPBind(7000)
		s.Spawn("srv", func(p *sim.Proc) {
			for {
				dg := sock.Recv(p)
				s.Spawn("handler", func(hp *sim.Proc) {
					hp.Sleep(200 * time.Microsecond)
					sock.SendTo(dg.From, dg.Payload)
				})
			}
		})
		g := New(s, Config{
			Proto: UDP, Target: srv.Addr(7000), Payload: 64,
			Clients: clients, Duration: 20 * time.Millisecond,
		}, cli)
		res := RunFor(s, g)
		s.Shutdown()
		return res.Throughput()
	}
	one := run(1)
	eight := run(8)
	if eight < 6*one {
		t.Fatalf("8 clients gave %.0f, 1 client %.0f: want ~8x", eight, one)
	}
}

func TestOpenLoopHitsConfiguredRate(t *testing.T) {
	s, n := newNet(3)
	srv := n.AddHost("server")
	cli := n.AddHost("client")
	echoService(s, srv, 10*time.Microsecond)
	g := New(s, Config{
		Proto: UDP, Target: srv.Addr(7000), Payload: 64,
		Clients: 2, RatePerSec: 50000, Duration: 20 * time.Millisecond, Warmup: time.Millisecond,
	}, cli)
	res := RunFor(s, g)
	s.Shutdown()
	if tp := res.Throughput(); tp < 45000 || tp > 55000 {
		t.Fatalf("open-loop delivered %.0f req/s, want ~50000", tp)
	}
}

func TestClosedLoopTCP(t *testing.T) {
	s, n := newNet(4)
	srv := n.AddHost("server")
	cli := n.AddHost("client")
	echoService(s, srv, 50*time.Microsecond)
	g := New(s, Config{
		Proto: TCP, Target: srv.Addr(7000), Payload: 128,
		Clients: 4, Duration: 10 * time.Millisecond,
	}, cli)
	res := RunFor(s, g)
	s.Shutdown()
	if res.Received < 100 {
		t.Fatalf("only %d TCP responses", res.Received)
	}
	if res.Hist.Median() < 50*time.Microsecond {
		t.Fatalf("median %v below service time", res.Hist.Median())
	}
}

func TestTimeoutCountsLost(t *testing.T) {
	s, n := newNet(5)
	srv := n.AddHost("server")
	cli := n.AddHost("client")
	// Server that drops every other request.
	sock := srv.MustUDPBind(7000)
	s.Spawn("srv", func(p *sim.Proc) {
		i := 0
		for {
			dg := sock.Recv(p)
			i++
			if i%2 == 0 {
				continue
			}
			sock.SendTo(dg.From, dg.Payload)
		}
	})
	g := New(s, Config{
		Proto: UDP, Target: srv.Addr(7000), Payload: 64,
		Clients: 1, Duration: 10 * time.Millisecond, Timeout: 500 * time.Microsecond,
	}, cli)
	res := RunFor(s, g)
	s.Shutdown()
	if res.Lost == 0 {
		t.Fatal("expected losses")
	}
	if res.Received == 0 {
		t.Fatal("expected some successes")
	}
}

func TestBodyBuilder(t *testing.T) {
	s, n := newNet(6)
	srv := n.AddHost("server")
	cli := n.AddHost("client")
	var sawBody bool
	sock := srv.MustUDPBind(7000)
	s.Spawn("srv", func(p *sim.Proc) {
		for {
			dg := sock.Recv(p)
			if len(dg.Payload) == 32 && dg.Payload[SeqBytes] == 0xAB {
				sawBody = true
			}
			sock.SendTo(dg.From, dg.Payload)
		}
	})
	g := New(s, Config{
		Proto: UDP, Target: srv.Addr(7000), Payload: 32,
		Body:    func(seq uint64, buf []byte) { buf[SeqBytes] = 0xAB },
		Clients: 1, Duration: time.Millisecond,
	}, cli)
	RunFor(s, g)
	s.Shutdown()
	if !sawBody {
		t.Fatal("body builder output not observed")
	}
}

func TestResultString(t *testing.T) {
	r := Result{Received: 100, Lost: 2, Window: 100 * time.Millisecond}
	r.Hist = metricsNewHistogram()
	r.Hist.Record(time.Millisecond)
	s := r.String()
	if !strings.Contains(s, "1000 req/s") || !strings.Contains(s, "lost=2") {
		t.Fatalf("string %q", s)
	}
	if (Result{}).Throughput() != 0 {
		t.Fatal("zero-window throughput")
	}
}

func TestOpenLoopTCP(t *testing.T) {
	s, n := newNet(9)
	srv := n.AddHost("server")
	cli := n.AddHost("client")
	echoService(s, srv, 20*time.Microsecond)
	g := New(s, Config{
		Proto: TCP, Target: srv.Addr(7000), Payload: 64,
		Clients: 2, RatePerSec: 20000, Duration: 10 * time.Millisecond, Warmup: time.Millisecond,
	}, cli)
	res := RunFor(s, g)
	s.Shutdown()
	if tp := res.Throughput(); tp < 16000 || tp > 24000 {
		t.Fatalf("open-loop TCP delivered %.0f, want ~20000", tp)
	}
}

func TestPoissonOpenLoopRate(t *testing.T) {
	s, n := newNet(10)
	srv := n.AddHost("server")
	cli := n.AddHost("client")
	echoService(s, srv, 5*time.Microsecond)
	g := New(s, Config{
		Proto: UDP, Target: srv.Addr(7000), Payload: 64,
		Clients: 4, RatePerSec: 40000, Poisson: true,
		Duration: 25 * time.Millisecond, Warmup: 2 * time.Millisecond,
	}, cli)
	res := RunFor(s, g)
	s.Shutdown()
	if tp := res.Throughput(); tp < 32000 || tp > 48000 {
		t.Fatalf("Poisson open loop delivered %.0f, want ~40000", tp)
	}
	// Poisson arrivals must produce latency dispersion, unlike periodic.
	if res.Hist.P99() == res.Hist.Median() {
		t.Fatal("no latency dispersion under Poisson arrivals")
	}
}
