// Package workload provides sockperf-style load generators (§6: "We use
// sockperf with VMA to evaluate the server performance"): closed-loop
// clients for saturation throughput and open-loop (fixed-rate) clients for
// latency-under-load, over UDP or TCP.
//
// Convention: every request carries an 8-byte little-endian sequence number
// prefix which servers echo back in their response (an RPC id), so the
// generator can match responses to requests and compute exact latencies
// even when the service reorders replies.
package workload

import (
	"encoding/binary"
	"fmt"
	"time"

	"lynx/internal/check"
	"lynx/internal/metrics"
	"lynx/internal/netstack"
	"lynx/internal/sim"
	"lynx/internal/trace"
)

// SeqBytes is the request/response sequence header length.
const SeqBytes = 8

// Seq extracts the sequence number from a message.
func Seq(msg []byte) (uint64, bool) {
	if len(msg) < SeqBytes {
		return 0, false
	}
	return binary.LittleEndian.Uint64(msg), true
}

// PutSeq writes the sequence header into buf.
func PutSeq(buf []byte, seq uint64) {
	binary.LittleEndian.PutUint64(buf, seq)
}

// Proto selects the transport.
type Proto int

const (
	// UDP datagrams.
	UDP Proto = iota
	// TCP framed messages.
	TCP
)

// Config shapes a load generation run.
type Config struct {
	Proto  Proto
	Target netstack.Addr
	// Payload is the request size including the sequence header.
	Payload int
	// Body customizes request bytes after the sequence header (optional).
	Body func(seq uint64, buf []byte)
	// Clients is the closed-loop concurrency (one in-flight request per
	// client), or the number of sending sockets for open-loop.
	Clients int
	// RatePerSec, when non-zero, switches to open-loop mode: requests are
	// issued at this aggregate rate regardless of responses.
	RatePerSec float64
	// Poisson makes open-loop inter-arrival times exponentially
	// distributed (memoryless arrivals) instead of periodic.
	Poisson bool
	// Duration bounds the measurement window.
	Duration time.Duration
	// Warmup is discarded before measuring (paper: 2 s warmup).
	Warmup time.Duration
	// Timeout for closed-loop responses (lost requests are retried with
	// a fresh sequence number). Defaults to 10 ms.
	Timeout time.Duration
	// Retries bounds same-sequence retransmits of a timed-out closed-loop
	// UDP request before it is declared lost (0 = no retransmit). Each
	// retransmit doubles the wait (exponential backoff), so a request can
	// occupy its client for up to Timeout * (2^(Retries+1)-1).
	Retries int
	// BasePort is the first client-side UDP port (default 20000). Give
	// each concurrently running generator its own range.
	BasePort uint16
	// Spans, when non-nil, opens a request span per measured request (the
	// sequence number is the span ID, matching the server-side stamps) and
	// closes it on response, loss, or timeout.
	Spans *trace.SpanTable
	// Check, when enabled, registers the generator's end-of-run request
	// conservation check: every request ever issued (warmup included) is
	// matched to a response, abandoned, or still in flight at shutdown.
	Check *check.Checker
}

// Result summarizes one run.
type Result struct {
	Sent     uint64
	Received uint64
	Lost     uint64
	// Retries counts same-sequence retransmits issued in the window.
	Retries uint64
	Hist    *metrics.Histogram
	Window  time.Duration
}

// Throughput reports measured responses per second (the goodput: only
// requests that produced a response count).
func (r Result) Throughput() float64 {
	if r.Window <= 0 {
		return 0
	}
	return float64(r.Received) / r.Window.Seconds()
}

// Offered reports distinct requests issued per second (retransmits of the
// same sequence are not re-counted). Goodput/Offered is the fraction of the
// offered load the server actually absorbed.
func (r Result) Offered() float64 {
	if r.Window <= 0 {
		return 0
	}
	return float64(r.Sent) / r.Window.Seconds()
}

// GoodputFraction reports Received/Sent, the per-request success rate.
func (r Result) GoodputFraction() float64 {
	if r.Sent == 0 {
		return 0
	}
	return float64(r.Received) / float64(r.Sent)
}

// String summarizes the result.
func (r Result) String() string {
	return fmt.Sprintf("%.0f req/s (n=%d lost=%d retries=%d p50=%v p90=%v p99=%v)",
		r.Throughput(), r.Received, r.Lost, r.Retries, r.Hist.Median(), r.Hist.P90(), r.Hist.P99())
}

// Generator drives load from one or more client hosts.
type Generator struct {
	sim   *sim.Sim
	hosts []*netstack.Host
	cfg   Config

	seq       uint64
	result    Result
	measuring bool
	startedAt sim.Time
	endAt     sim.Time
	inflight  map[uint64]sim.Time
	done      int

	// Lifetime request ledger (warmup included), for the conservation
	// invariant: issued == matched + abandoned + len(inflight).
	issued    uint64
	matched   uint64
	abandoned uint64
}

// New creates a generator sending from the given client hosts (requests are
// spread across them round-robin).
func New(s *sim.Sim, cfg Config, hosts ...*netstack.Host) *Generator {
	if cfg.Clients <= 0 {
		cfg.Clients = 1
	}
	if cfg.Payload < SeqBytes {
		cfg.Payload = SeqBytes
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Millisecond
	}
	if len(hosts) == 0 {
		panic("workload: need at least one client host")
	}
	if cfg.BasePort == 0 {
		cfg.BasePort = 20000
	}
	g := &Generator{
		sim: s, hosts: hosts, cfg: cfg,
		result:   Result{Hist: metrics.NewHistogram()},
		inflight: make(map[uint64]sim.Time),
	}
	if ck := cfg.Check; ck.Enabled() {
		ck.AddFinisher("workload.request-conservation", func(fail func(string, ...any)) {
			if g.issued != g.matched+g.abandoned+uint64(len(g.inflight)) {
				fail("issued %d != matched %d + abandoned %d + in-flight %d",
					g.issued, g.matched, g.abandoned, len(g.inflight))
			}
		})
	}
	return g
}

// request builds the next request buffer.
func (g *Generator) request() ([]byte, uint64) {
	g.seq++
	g.issued++
	buf := make([]byte, g.cfg.Payload)
	PutSeq(buf, g.seq)
	if g.cfg.Body != nil {
		g.cfg.Body(g.seq, buf)
	}
	if g.measuring {
		g.result.Sent++
	}
	return buf, g.seq
}

// begin opens a span for a measured request. Warmup requests are not traced,
// so warmup transients never skew the latency breakdown; server-side stamps
// for unopened IDs are no-ops.
func (g *Generator) begin(seq uint64, at sim.Time) {
	if g.measuring {
		g.cfg.Spans.Begin(seq, at)
	}
}

// noteRxWait attributes the response's client-side receive-queue residency
// (enqueue at enq, consumed at now) to the span's network phase. No-op when
// spans are off or the transport carried no enqueue stamp.
func (g *Generator) noteRxWait(msg []byte, enq, now sim.Time) {
	if g.cfg.Spans == nil || enq <= 0 {
		return
	}
	if seq, ok := Seq(msg); ok {
		g.cfg.Spans.AddWait(seq, trace.PhaseNetwork, now.Sub(enq))
	}
}

// record notes a response.
func (g *Generator) record(msg []byte, at sim.Time) {
	seq, ok := Seq(msg)
	if !ok {
		return
	}
	sent, ok := g.inflight[seq]
	if !ok {
		return
	}
	delete(g.inflight, seq)
	g.matched++
	if g.measuring && sent >= g.startedAt {
		g.result.Received++
		g.result.Hist.Record(at.Sub(sent))
		g.cfg.Spans.Close(seq, trace.SpanDone, at)
	}
}

// Run executes the workload to completion (including warmup) and returns
// the measured result. It must be called before the simulation runs; it
// spawns its processes and returns immediately — call Wait (or inspect the
// returned pointer after the simulation) for the outcome.
func (g *Generator) Run() *Result {
	g.endAt = g.sim.Now().Add(g.cfg.Warmup + g.cfg.Duration)
	switch g.cfg.Proto {
	case UDP:
		g.runUDP()
	case TCP:
		g.runTCP()
	}
	total := g.cfg.Warmup + g.cfg.Duration
	g.sim.After(g.cfg.Warmup, func() {
		g.measuring = true
		g.startedAt = g.sim.Now()
	})
	g.sim.After(total, func() {
		g.measuring = false
		g.result.Window = g.cfg.Duration
		// Requests still in flight at window end are lost only if they
		// are already older than the timeout; fresh ones are stragglers.
		for _, sent := range g.inflight {
			if g.sim.Now().Sub(sent) > g.cfg.Timeout {
				g.result.Lost++
			}
		}
	})
	return &g.result
}

// Done reports whether all client processes finished their window.
func (g *Generator) Done() bool { return g.done == g.cfg.Clients }

// Ledger reports the lifetime request accounting (warmup included):
// requests issued, matched to responses, abandoned, and still in flight.
func (g *Generator) Ledger() (issued, matched, abandoned, inflight uint64) {
	return g.issued, g.matched, g.abandoned, uint64(len(g.inflight))
}

func (g *Generator) host(i int) *netstack.Host { return g.hosts[i%len(g.hosts)] }

// gap returns the next inter-send interval: fixed, or exponential with the
// same mean for Poisson arrivals.
func (g *Generator) gap(mean time.Duration) time.Duration {
	if !g.cfg.Poisson {
		return mean
	}
	return time.Duration(g.sim.Rand().ExpFloat64() * float64(mean))
}

func (g *Generator) runUDP() {
	if g.cfg.RatePerSec > 0 {
		g.runUDPOpenLoop()
		return
	}
	end := g.endAt
	for c := 0; c < g.cfg.Clients; c++ {
		sock := g.host(c).MustUDPBind(g.cfg.BasePort + uint16(c))
		g.sim.Spawn(fmt.Sprintf("wl/udp-closed%d", c), func(p *sim.Proc) {
			defer func() { g.done++ }()
			for p.Now() < end {
				buf, seq := g.request()
				g.inflight[seq] = p.Now()
				g.begin(seq, p.Now())
				sock.SendTo(g.cfg.Target, buf)
				timeout := g.cfg.Timeout
				attempts := 0
				for {
					dg, ok, _ := sock.RecvTimeout(p, timeout)
					if ok {
						g.noteRxWait(dg.Payload, dg.EnqueuedAt, p.Now())
						g.record(dg.Payload, p.Now())
						if rseq, rok := Seq(dg.Payload); rok && rseq == seq {
							break
						}
						// A stale response to an earlier retransmitted
						// request; keep waiting for the current one.
						continue
					}
					if attempts >= g.cfg.Retries {
						delete(g.inflight, seq)
						g.abandoned++
						if g.measuring {
							g.result.Lost++
						}
						g.cfg.Spans.Close(seq, trace.SpanLost, p.Now())
						break
					}
					// Retransmit the same sequence with doubled patience;
					// record() matches whichever copy answers first and
					// charges latency from the original send.
					attempts++
					if g.measuring {
						g.result.Retries++
					}
					sock.SendTo(g.cfg.Target, buf)
					timeout <<= 1
				}
			}
		})
	}
}

func (g *Generator) runUDPOpenLoop() {
	interval := time.Duration(float64(time.Second) / g.cfg.RatePerSec)
	end := g.endAt
	for c := 0; c < g.cfg.Clients; c++ {
		c := c
		sock := g.host(c).MustUDPBind(g.cfg.BasePort + uint16(c))
		// Sender at rate/clients each.
		g.sim.Spawn(fmt.Sprintf("wl/udp-open-tx%d", c), func(p *sim.Proc) {
			defer func() { g.done++ }()
			per := interval * time.Duration(g.cfg.Clients)
			// Stagger the senders so the aggregate is a smooth stream, not
			// periodic bursts of len(clients).
			p.Sleep(time.Duration(c) * interval)
			for p.Now() < end {
				buf, seq := g.request()
				g.inflight[seq] = p.Now()
				g.begin(seq, p.Now())
				sock.SendTo(g.cfg.Target, buf)
				p.Sleep(g.gap(per))
			}
		})
		g.sim.Spawn(fmt.Sprintf("wl/udp-open-rx%d", c), func(p *sim.Proc) {
			for {
				dg := sock.Recv(p)
				g.noteRxWait(dg.Payload, dg.EnqueuedAt, p.Now())
				g.record(dg.Payload, p.Now())
			}
		})
	}
}

func (g *Generator) runTCP() {
	end := g.endAt
	openLoop := g.cfg.RatePerSec > 0
	interval := time.Duration(0)
	if openLoop {
		interval = time.Duration(float64(time.Second)/g.cfg.RatePerSec) * time.Duration(g.cfg.Clients)
	}
	for c := 0; c < g.cfg.Clients; c++ {
		c := c
		g.sim.Spawn(fmt.Sprintf("wl/tcp%d", c), func(p *sim.Proc) {
			defer func() { g.done++ }()
			conn, err := g.host(c).TCPDial(p, g.cfg.Target)
			if err != nil {
				return
			}
			if openLoop {
				g.sim.Spawn(fmt.Sprintf("wl/tcp-rx%d", c), func(rp *sim.Proc) {
					for {
						msg, enq, err := conn.RecvQueued(rp)
						if err != nil {
							return
						}
						g.noteRxWait(msg, enq, rp.Now())
						g.record(msg, rp.Now())
					}
				})
				p.Sleep(time.Duration(c) * time.Duration(float64(time.Second)/g.cfg.RatePerSec))
				for p.Now() < end {
					buf, seq := g.request()
					g.inflight[seq] = p.Now()
					g.begin(seq, p.Now())
					if conn.Send(p, buf) != nil {
						return
					}
					p.Sleep(interval)
				}
				return
			}
			for p.Now() < end {
				buf, seq := g.request()
				g.inflight[seq] = p.Now()
				g.begin(seq, p.Now())
				if conn.Send(p, buf) != nil {
					return
				}
				msg, enq, ok, err := conn.RecvQueuedTimeout(p, g.cfg.Timeout)
				if err != nil {
					return
				}
				if !ok {
					delete(g.inflight, seq)
					g.abandoned++
					if g.measuring {
						g.result.Lost++
					}
					g.cfg.Spans.Close(seq, trace.SpanLost, p.Now())
					continue
				}
				g.noteRxWait(msg, enq, p.Now())
				g.record(msg, p.Now())
			}
		})
	}
}

// RunFor is a convenience that spawns the generator, advances the sim for
// the whole window (plus slack for stragglers), and returns the result.
func RunFor(s *sim.Sim, g *Generator) Result {
	res := g.Run()
	total := g.cfg.Warmup + g.cfg.Duration
	s.RunUntilCond(s.Now().Add(total+50*time.Millisecond), time.Millisecond, g.Done)
	return *res
}
