package workload

import (
	"testing"
	"time"

	"lynx/internal/netstack"
	"lynx/internal/sim"
)

func TestPoissonMeanRate(t *testing.T) {
	s := sim.New(sim.Config{Seed: 2})
	g := New(s, Config{Proto: UDP, RatePerSec: 1000, Poisson: true}, &netstack.Host{})
	_ = g
	sum := time.Duration(0)
	n := 10000
	for i := 0; i < n; i++ {
		sum += g.gap(time.Millisecond)
	}
	mean := sum / time.Duration(n)
	t.Logf("mean gap = %v", mean)
	if mean < 900*time.Microsecond || mean > 1100*time.Microsecond {
		t.Fatalf("mean %v, want ~1ms", mean)
	}
}
