// Benchmarks regenerating every table and figure of the paper's evaluation
// (one Benchmark per experiment; see DESIGN.md's experiment index), plus
// micro-benchmarks of the core substrates.
//
// Experiment benchmarks execute the full simulated testbed once per
// iteration and report the headline measurement as a custom metric, so
//
//	go test -bench=. -benchmem
//
// regenerates the entire evaluation. The text tables themselves come from
// `go run ./cmd/lynxbench -exp all`.
package lynx_test

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"lynx/internal/apps/lenet"
	"lynx/internal/experiments"
)

// runExperiment executes one experiment per b.N iteration, reporting the
// wall-clock cost of a full regeneration.
func runExperiment(b *testing.B, id string, metricRow, metricCol, metricName string) {
	b.Helper()
	var last *experiments.Report
	for i := 0; i < b.N; i++ {
		r, err := experiments.Run(id, experiments.Config{Seed: uint64(i + 1), Scale: 0.3})
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	if metricRow != "" && last != nil {
		if cell, ok := last.Cell(metricRow, metricCol); ok {
			if v, ok := parseCell(cell); ok {
				b.ReportMetric(v, metricName)
			}
		}
	}
}

// parseCell extracts a leading float from a report cell ("3.5K (2.5x)" ->
// 3500).
func parseCell(s string) (float64, bool) {
	s = strings.TrimSpace(s)
	if i := strings.IndexByte(s, ' '); i > 0 {
		s = s[:i]
	}
	mult := 1.0
	s = strings.TrimSuffix(s, "x")
	if strings.HasSuffix(s, "K") {
		mult = 1000
		s = s[:len(s)-1]
	}
	s = strings.TrimSuffix(s, "µs")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, false
	}
	return v * mult, true
}

// --- One benchmark per paper table/figure (see DESIGN.md §3) ---

func BenchmarkSec3InvocationOverhead(b *testing.B) {
	runExperiment(b, "sec3-invocation", "", "", "")
}

func BenchmarkSec3NoisyNeighbor(b *testing.B) {
	runExperiment(b, "sec3-noisy", "", "", "")
}

func BenchmarkFig5TransferMechanisms(b *testing.B) {
	runExperiment(b, "fig5", "", "", "")
}

func BenchmarkFig6Throughput(b *testing.B) {
	runExperiment(b, "fig6", "", "", "")
}

func BenchmarkFig7Latency(b *testing.B) {
	runExperiment(b, "fig7", "", "", "")
}

func BenchmarkSec62Innova(b *testing.B) {
	runExperiment(b, "sec62-innova", "Innova FPGA (NICA AFU)", "pkt/s", "innova-pkt/s")
}

func BenchmarkSec62Isolation(b *testing.B) {
	runExperiment(b, "sec62-isolation", "", "", "")
}

func BenchmarkSec62VCA(b *testing.B) {
	runExperiment(b, "sec62-vca", "", "", "")
}

func BenchmarkFig8aLeNet(b *testing.B) {
	runExperiment(b, "fig8a", "Lynx BlueField", "req/s", "lenet-req/s")
}

func BenchmarkFig8aTCP(b *testing.B) {
	runExperiment(b, "fig8a-tcp", "Lynx BlueField", "req/s", "lenet-tcp-req/s")
}

func BenchmarkFig8bScaleout(b *testing.B) {
	runExperiment(b, "fig8b", "4 local + 8 remote", "req/s", "12gpu-req/s")
}

func BenchmarkFig8cProjection(b *testing.B) {
	runExperiment(b, "fig8c", "", "", "")
}

func BenchmarkFig9Memcached(b *testing.B) {
	runExperiment(b, "fig9", "", "", "")
}

func BenchmarkSec64FaceVerify(b *testing.B) {
	runExperiment(b, "sec64-faceverify", "Lynx BlueField", "req/s", "fv-req/s")
}

func BenchmarkSec511VMA(b *testing.B) {
	runExperiment(b, "sec511-vma", "", "", "")
}

func BenchmarkSec51Barrier(b *testing.B) {
	runExperiment(b, "sec51-barrier", "", "", "")
}

func BenchmarkBreakdown(b *testing.B) {
	runExperiment(b, "breakdown", "end-to-end", "mean", "e2e-µs")
}

// BenchmarkTraceOverhead runs the same BlueField echo deployment with the
// observability plane fully enabled (span table + event ring + samplers)
// and fully disabled, so the two sub-benchmark wall times quantify the real
// (host CPU) cost of tracing. The simulated virtual-time results are
// identical by construction — asserted by TestBreakdownDisabledIsFree.
func BenchmarkTraceOverhead(b *testing.B) {
	run := func(b *testing.B, traced bool) {
		b.Helper()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res := experiments.BreakdownRun(experiments.Config{Seed: uint64(i + 1), Scale: 0.3}, traced)
			if res.Received == 0 {
				b.Fatal("no responses measured")
			}
		}
	}
	b.Run("untraced", func(b *testing.B) { run(b, false) })
	b.Run("traced", func(b *testing.B) { run(b, true) })
}

// --- Ablations (design choices called out in DESIGN.md) ---

func BenchmarkAblateCoalesce(b *testing.B) {
	runExperiment(b, "ablate-coalesce", "", "", "")
}

func BenchmarkAblateDispatch(b *testing.B) {
	runExperiment(b, "ablate-dispatch", "", "", "")
}

func BenchmarkAblatePoll(b *testing.B) {
	runExperiment(b, "ablate-poll", "", "", "")
}

func BenchmarkAblateQPShare(b *testing.B) {
	runExperiment(b, "ablate-qp-share", "", "", "")
}

// --- Macro benchmark: the whole evaluation, sequential vs parallel ---

// BenchmarkFullEval regenerates a scaled-down copy of every experiment per
// iteration — the end-to-end number that the sweep worker pool and the DES
// hot-path work target. The sequential/parallel pair quantifies the sweep
// scheduler's speedup on this machine (they are identical by construction on
// a single-core runner).
func BenchmarkFullEval(b *testing.B) {
	run := func(b *testing.B, workers int) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			for _, id := range experiments.List() {
				if _, err := experiments.Run(id, experiments.Config{
					Seed: uint64(i + 1), Scale: 0.1, Workers: workers,
				}); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("sequential", func(b *testing.B) { run(b, 1) })
	b.Run("parallel", func(b *testing.B) { run(b, experiments.AutoWorkers) })
}

// --- Substrate micro-benchmarks (real CPU work, not simulation) ---

func BenchmarkLeNetInference(b *testing.B) {
	net := lenet.New(1)
	img := lenet.RenderDigit(7, 0, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := net.Infer(img); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulatorEventThroughput(b *testing.B) {
	// Measures raw simulator overhead: events executed per second.
	r, err := experiments.Run("sec3-invocation", experiments.Config{Seed: 1, Scale: 0.05})
	if err != nil || len(r.Rows) == 0 {
		b.Fatal("warmup failed")
	}
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run("sec3-invocation", experiments.Config{Seed: 1, Scale: 0.05}); err != nil {
			b.Fatal(err)
		}
	}
	_ = start
}

func BenchmarkExtPipeline(b *testing.B) {
	runExperiment(b, "ext-pipeline", "Lynx pipeline (GPU0 -> GPU1)", "req/s", "pipeline-req/s")
}

func BenchmarkExtIntegratedNIC(b *testing.B) {
	runExperiment(b, "ext-integrated-nic", "Lynx-managed (remote mqueues)", "req/s", "nicaccel-req/s")
}

func BenchmarkExtLatencyCurve(b *testing.B) {
	runExperiment(b, "ext-latency-curve", "", "", "")
}

func BenchmarkExtInnovaDuplex(b *testing.B) {
	runExperiment(b, "ext-innova-duplex", "Innova full duplex (AFU rx+tx)", "echo/s", "fpga-echo/s")
}
