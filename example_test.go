package lynx_test

import (
	"fmt"
	"time"

	"lynx"
)

// Example builds the smallest complete deployment: a GPU echo service behind
// Lynx on a BlueField SmartNIC, and one request through it.
func Example() {
	cluster := lynx.NewCluster()
	defer cluster.Close()
	server := cluster.NewMachine("server1", 6)
	bf := server.AttachBlueField("bf1")
	gpu := server.AddGPU("gpu0", lynx.K40m, false, "server1")
	client := cluster.AddClient("client1")

	srv := lynx.NewServer(bf.Platform(7))
	h, _ := srv.Register(gpu, lynx.QueueConfig{Kind: lynx.ServerQueue, Slots: 16, SlotSize: 128}, 1)
	svc, _ := srv.AddService(lynx.UDP, 7000, nil, 1, h)
	q := h.AccelQueues()[0]
	gpu.LaunchPersistent(cluster.Testbed().Sim, 1, func(tb *lynx.TB) {
		for {
			m := q.Recv(tb.Proc())
			if q.Send(tb.Proc(), uint16(m.Slot), m.Payload) != nil {
				return
			}
		}
	})
	srv.Start()

	sock := client.MustUDPBind(9000)
	done := false
	cluster.Spawn("client", func(p *lynx.Proc) {
		sock.SendTo(svc.Addr(), []byte("hello"))
		reply := sock.Recv(p)
		fmt.Printf("echoed %q through the SmartNIC\n", reply.Payload)
		done = true
	})
	cluster.RunUntil(time.Second, func() bool { return done })
	// Output: echoed "hello" through the SmartNIC
}
