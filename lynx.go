// Package lynx is the public facade of the Lynx reproduction: a
// SmartNIC-driven, accelerator-centric network server architecture
// (Tork, Maudlej, Silberstein — ASPLOS 2020), implemented on a
// deterministic discrete-event simulation of the full hardware stack.
//
// A deployment is built in four steps:
//
//  1. create a Cluster (the simulated testbed: switch, machines, clients);
//  2. add machines, SmartNICs and accelerators;
//  3. create a Server (the Lynx runtime) on a SmartNIC or host platform,
//     register accelerators and services, and wire accelerator-side
//     request-processing code to the returned mqueues;
//  4. Start everything and Run the cluster's virtual clock.
//
// See examples/quickstart for the minimal end-to-end program and DESIGN.md
// for the architecture.
package lynx

import (
	"time"

	"lynx/internal/accel"
	"lynx/internal/check"
	"lynx/internal/cluster"
	"lynx/internal/core"
	"lynx/internal/fault"
	"lynx/internal/model"
	"lynx/internal/mqueue"
	"lynx/internal/netstack"
	"lynx/internal/profile"
	"lynx/internal/sim"
	"lynx/internal/snic"
	"lynx/internal/workload"
)

// Re-exported building blocks. The internal packages carry the full API;
// these aliases cover everything a deployment needs.
type (
	// Cluster is a simulated deployment (machines, network, virtual time).
	Cluster struct {
		tb     *snic.Testbed
		params *model.Params
		check  *check.Checker
		prof   *profile.Profile
	}
	// Machine is one physical server.
	Machine = snic.Machine
	// BlueField is the ARM SmartNIC platform.
	BlueField = snic.BlueField
	// Innova is the FPGA SmartNIC (receive path).
	Innova = snic.Innova
	// GPU is a simulated CUDA device.
	GPU = accel.GPU
	// VCA is the Intel Visual Compute Accelerator.
	VCA = accel.VCA
	// TB is a persistent-kernel threadblock context.
	TB = accel.TB
	// Server is a Lynx runtime instance.
	Server = core.Runtime
	// AccelHandle binds a registered accelerator's mqueues.
	AccelHandle = core.AccelHandle
	// Service is a client-facing UDP/TCP service.
	Service = core.Service
	// ClientBinding is a client mqueue bound to a backend.
	ClientBinding = core.ClientBinding
	// Pipeline is a multi-accelerator composition: requests traverse a
	// chain of accelerator stages with the SNIC relaying between them.
	Pipeline = core.Pipeline
	// Queue is the accelerator-side mqueue handle (the lightweight I/O
	// library accelerator code uses).
	Queue = mqueue.AccelQueue
	// Msg is one message received on a Queue.
	Msg = mqueue.Msg
	// QueueConfig shapes mqueue geometry.
	QueueConfig = mqueue.Config
	// Addr is a network address.
	Addr = netstack.Addr
	// Host is a network endpoint (clients, backends).
	Host = netstack.Host
	// Params holds every calibrated hardware constant.
	Params = model.Params
	// Proc is a simulated process handle.
	Proc = sim.Proc
	// LoadConfig parameterizes a load generator.
	LoadConfig = workload.Config
	// LoadResult summarizes a load run.
	LoadResult = workload.Result
	// Stats is a Server's counter snapshot (requests by outcome, drops by
	// cause, retries, failovers).
	Stats = core.Stats
	// FaultConfig declares a deterministic fault-injection plan for a
	// cluster (datagram loss, RDMA/PCIe perturbation, accelerator stalls).
	FaultConfig = fault.Config
	// FaultStall pins one accelerator queue stall window inside a
	// FaultConfig.
	FaultStall = fault.Stall
	// FaultStats counts the faults a cluster's plan actually injected.
	FaultStats = fault.Stats
	// InvariantReport is the outcome of a WithInvariants run: the recorded
	// violations (empty on a healthy run) and how many end-of-run checks
	// were evaluated.
	InvariantReport = check.Report
	// InvariantViolation is one failed runtime invariant.
	InvariantViolation = check.Violation
	// Platform selects where a Server's frontend runs (SmartNIC cores or
	// host cores); obtain one from (*BlueField).Platform or
	// (*Machine).HostPlatform.
	Platform = core.Platform
	// ProfileReport is a WithProfile run's tail-latency attribution report:
	// per-phase wait/service decomposition, ranked bottlenecks, and the
	// flight recorder's slowest/most-recent spans.
	ProfileReport = profile.Report
	// ClusterProfile is the attribution plane a WithProfile cluster carries
	// (span table, flight recorder, metrics registry); obtain it with
	// (*Cluster).Profile for advanced wiring.
	ClusterProfile = profile.Profile
	// BatchConfig tunes end-to-end hot-path batching (doorbell coalescing,
	// CQ drain budget, dispatcher quantum, coalescing window); install it
	// with WithBatching. The zero value batches nothing: batch size 1
	// everywhere, byte-identical to a cluster built without the option.
	BatchConfig = model.BatchConfig
	// RackConfig parameterizes a multi-node rack build (node count,
	// replication factor, shard universe, fault plan); pass it to BuildRack.
	RackConfig = cluster.Config
	// Rack is a built multi-node deployment: N SNIC-driven KV servers behind
	// per-node ToR switches, sharded by a consistent-hash ShardMap, with
	// each primary's SNIC dispatcher replicating writes to peer accelerators
	// over one-sided RDMA.
	Rack = cluster.Rack
	// RackNode is one rack member (machine, SmartNIC, GPU, runtime, store).
	RackNode = cluster.Node
	// RackTelemetry arms the per-node observability plane of a rack build:
	// every node gets its own event tracer, span table and sampling metrics
	// registry, rolled up by (*Rack).TelemetrySnapshot and (*Rack).TraceExport.
	RackTelemetry = cluster.Telemetry
	// ShardMap is the consistent-hash membership and key-placement map racks
	// shard by; it is also usable standalone via NewShardMap.
	ShardMap = cluster.ShardMap
	// Replicator drives one service's SNIC-side replication quorum; obtain
	// it from a RackNode (or wire one manually with (*Server).AddReplication).
	Replicator = core.Replicator
	// ReplConfig parameterizes a service's replication layer (write
	// classifier and quorum size).
	ReplConfig = core.ReplConfig
	// ReplStats is a Replicator's counter snapshot.
	ReplStats = core.ReplStats
	// InvariantChecker collects runtime invariant violations; create one
	// with NewInvariantChecker when arming a RackConfig.
	InvariantChecker = check.Checker
)

// Protocols and queue kinds.
const (
	UDP = core.UDP
	TCP = core.TCP

	ServerQueue = mqueue.ServerQueue
	ClientQueue = mqueue.ClientQueue

	K40m = accel.K40m
	K80  = accel.K80Half
)

// DefaultParams returns the calibrated model constants (a copy, free to
// modify before NewCluster).
func DefaultParams() Params { return model.Default() }

// BuildRack constructs a multi-node, sharded, replicated KV rack on its own
// simulated testbed: hardware, shard map, runtimes, stores, replication
// wiring and apply kernels, started and ready for traffic. A 1-node RF=1
// rack is byte-identical to the equivalent single-server deployment.
//
//	rack, err := lynx.BuildRack(lynx.RackConfig{Nodes: 3, Replicas: 3, Seed: 42})
func BuildRack(cfg RackConfig) (*Rack, error) { return cluster.Build(cfg) }

// NewShardMap creates an empty consistent-hash shard map over the given
// shard universe (the default when shards <= 0).
func NewShardMap(shards int) *ShardMap { return cluster.NewShardMap(shards) }

// NewInvariantChecker creates a checker to install in a RackConfig; read its
// findings with Snapshot after the rack is Closed.
func NewInvariantChecker() *InvariantChecker { return check.New() }

// Option configures a Cluster at construction time.
type Option func(*clusterConfig)

type clusterConfig struct {
	seed       uint64
	params     *Params
	faults     FaultConfig
	batch      BatchConfig
	invariants bool
	profile    bool
}

// WithSeed sets the simulation seed. Identical seeds (and options) produce
// byte-identical runs; the default is 1.
func WithSeed(seed uint64) Option {
	return func(c *clusterConfig) { c.seed = seed }
}

// WithParams overrides the calibrated model constants. The struct is used
// as-is (not copied); nil restores the defaults.
func WithParams(p *Params) Option {
	return func(c *clusterConfig) { c.params = p }
}

// WithFaults installs a deterministic fault-injection plan: every machine,
// SmartNIC and accelerator attached to the cluster afterwards is subject to
// it. The plan draws from its own seeded stream, so adding faults never
// perturbs the rest of the simulation, and the same (seed, FaultConfig)
// pair replays the exact same fault sequence.
func WithFaults(fc FaultConfig) Option {
	return func(c *clusterConfig) { c.faults = fc }
}

// WithInvariants arms the cluster's runtime invariant checker: every layer
// (simulator clock, mqueue rings, PCIe fabric, netstack, runtime, workload)
// asserts its conservation and bounds invariants as the simulation runs, and
// end-of-run finishers are evaluated when the cluster is Closed. Read the
// outcome with InvariantReport. The checks are cheap (a pointer test per
// guarded site when enabled, branch-only when not) and never change
// simulation behaviour, so a checked run stays bit-identical to an unchecked
// one.
func WithInvariants() Option {
	return func(c *clusterConfig) { c.invariants = true }
}

// WithProfile arms the cluster's tail-latency attribution plane: every
// request carries a span whose five phases (network, snic, transfer,
// queueing, execution) are each decomposed into waiting and in-service
// time, a monitor samples per-resource utilization, and a bounded flight
// recorder keeps the slowest and most recent completed spans. Read the
// outcome with ProfileReport after the run; servers must be created with
// (*Cluster).NewServer for their stages to be stamped. Combined with
// WithInvariants, span-accounting finishers (phase telescoping,
// wait ≤ phase) join the end-of-run checks.
func WithProfile() Option {
	return func(c *clusterConfig) { c.profile = true }
}

// DefaultBatchConfig returns the tuned batching configuration (8 WQEs per
// doorbell, CQ drain budget 16, dispatcher quantum 8, no coalescing delay) —
// the configuration the -exp batch knee sweep reports as "batched".
func DefaultBatchConfig() BatchConfig { return model.DefaultBatchConfig() }

// WithBatching installs a hot-path batching configuration on the cluster:
// dispatcher contexts dequeue a quantum of ready messages per wakeup, mqueue
// writes post in doorbell groups with checkpointed completion waits, and
// TX-ring sweeps drain in spanning reads. The configuration applies to every
// Server subsequently created on the cluster.
//
// The zero BatchConfig — and the explicit unit configuration
// {Doorbell: 1, CQDrain: 1, Quantum: 1} — leaves the runtime on its exact
// per-message code paths, byte-identical to a cluster built without this
// option. Invalid configurations (zero or negative budgets alongside set
// fields, negative coalescing window) make NewCluster panic; validate ahead
// of time with BatchConfig.Validate when the values come from user input.
func WithBatching(bc BatchConfig) Option {
	return func(c *clusterConfig) { c.batch = bc }
}

// NewCluster creates an empty simulated deployment.
//
//	cluster := lynx.NewCluster(
//		lynx.WithSeed(42),
//		lynx.WithFaults(lynx.FaultConfig{DropRate: 0.01}),
//	)
//
// All blocking receives with deadlines across the API follow one idiom:
// they return (value, ok, err) where ok reports whether a value arrived
// before the timeout and err carries transport-level failures (closed
// connections, SNIC-reported backend errors); err is only meaningful when
// ok is true (except for closed endpoints, which report err with ok
// false).
func NewCluster(opts ...Option) *Cluster {
	cfg := clusterConfig{seed: 1}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.params == nil {
		def := model.Default()
		cfg.params = &def
	}
	if cfg.batch != (BatchConfig{}) {
		if err := cfg.batch.Validate(); err != nil {
			panic("lynx: WithBatching: " + err.Error())
		}
		// Apply onto a copy: WithParams documents the caller's struct is
		// used as-is, so it must not be mutated behind their back.
		pp := *cfg.params
		pp.Batch = cfg.batch
		cfg.params = &pp
	}
	c := &Cluster{
		tb:     snic.NewTestbedWith(cfg.seed, cfg.params, cfg.faults),
		params: cfg.params,
	}
	if cfg.invariants {
		c.check = check.New()
		c.tb.EnableInvariants(c.check)
	}
	if cfg.profile {
		c.prof = profile.New(profile.Options{})
		if c.check != nil {
			c.prof.Spans().RegisterInvariants(c.check)
		}
	}
	return c
}

// Params returns the cluster's model constants.
func (c *Cluster) Params() *Params { return c.params }

// FaultStats reports how many faults the cluster's plan has injected so
// far (zero value when no WithFaults option was given).
func (c *Cluster) FaultStats() FaultStats { return c.tb.Faults.Stats() }

// NewMachine adds a server machine with the given Xeon core count.
func (c *Cluster) NewMachine(name string, cores int) *Machine {
	return c.tb.NewMachine(name, cores)
}

// AddClient adds a client host (a load-generator machine).
func (c *Cluster) AddClient(name string) *Host { return c.tb.AddClient(name) }

// NewServer creates a Lynx runtime on a platform obtained from
// (*BlueField).Platform or (*Machine).HostPlatform.
func NewServer(plat core.Platform) *Server { return core.NewRuntime(plat) }

// NewServer creates a Lynx runtime wired into the cluster's observability
// planes: with WithProfile armed, the runtime stamps request spans into the
// cluster's span table and a monitor samples its resource utilization into
// the cluster's metrics registry. Without WithProfile it is equivalent to
// the package-level NewServer.
func (c *Cluster) NewServer(plat Platform) *Server {
	if c.prof != nil && plat.Spans == nil {
		plat.Spans = c.prof.Spans()
	}
	srv := core.NewRuntime(plat)
	if c.prof != nil {
		// Start the monitor at the first event-loop instant so it samples
		// the runtime after services and accelerators are registered.
		c.tb.Sim.After(0, func() {
			srv.StartMonitor(50*time.Microsecond, c.prof.Registry())
		})
	}
	return srv
}

// Profile returns the cluster's attribution plane, or nil without
// WithProfile. Its span table and metrics registry can be fed into other
// exports (e.g. a Chrome trace timeline).
func (c *Cluster) Profile() *ClusterProfile { return c.prof }

// ProfileReport builds the tail-latency attribution report from everything
// observed so far: per-phase wait/service decomposition, ranked
// bottlenecks, and the flight recorder's slowest and most recent spans.
// Without WithProfile it returns an empty report.
func (c *Cluster) ProfileReport() *ProfileReport { return c.prof.Report() }

// WriteProfile writes the current ProfileReport to path as deterministic,
// pretty-printed JSON. It is a no-op (returning nil) without WithProfile.
func (c *Cluster) WriteProfile(path string) error { return c.prof.WriteFile(path) }

// ArmProfilePostmortem arranges for the profile report to be dumped to
// path the first time a runtime invariant fires. Requires both WithProfile
// and WithInvariants; otherwise it is a no-op.
func (c *Cluster) ArmProfilePostmortem(path string) {
	c.prof.ArmPostmortem(c.check, path)
}

// Spawn starts a simulated process (for clients, backends, custom logic).
func (c *Cluster) Spawn(name string, fn func(p *Proc)) { c.tb.Sim.Spawn(name, fn) }

// After schedules fn at the given virtual delay.
func (c *Cluster) After(d time.Duration, fn func()) { c.tb.Sim.After(d, fn) }

// Now returns the current virtual time as a duration since boot.
func (c *Cluster) Now() time.Duration { return time.Duration(c.tb.Sim.Now()) }

// Run advances virtual time by d.
func (c *Cluster) Run(d time.Duration) {
	c.tb.Sim.RunUntil(c.tb.Sim.Now().Add(d))
}

// RunUntil advances virtual time in steps until cond holds or d elapses.
func (c *Cluster) RunUntil(d time.Duration, cond func() bool) {
	c.tb.Sim.RunUntil(c.tb.Sim.Now()) // flush current instant
	c.tb.Sim.RunUntilCond(c.tb.Sim.Now().Add(d), time.Millisecond, cond)
}

// Close shuts the cluster down, unwinding all simulated processes. With
// WithInvariants armed, the end-of-run invariant finishers evaluate here.
func (c *Cluster) Close() { c.tb.Sim.Shutdown() }

// InvariantReport returns the invariant checker's findings. After Close it
// includes the end-of-run conservation checks; before Close it covers only
// the violations recorded so far. Without WithInvariants it is empty and
// passing.
func (c *Cluster) InvariantReport() InvariantReport { return c.check.Snapshot() }

// Testbed exposes the underlying testbed for advanced wiring (Innova,
// custom fabrics, direct access to the simulator).
func (c *Cluster) Testbed() *snic.Testbed { return c.tb }

// NewLoad creates a workload generator targeting a service from the given
// client hosts. With WithInvariants armed, the generator's request ledger
// joins the cluster's conservation checks.
func (c *Cluster) NewLoad(cfg LoadConfig, clients ...*Host) *workload.Generator {
	if cfg.Check == nil {
		cfg.Check = c.check
	}
	if cfg.Spans == nil && c.prof != nil {
		cfg.Spans = c.prof.Spans()
	}
	return workload.New(c.tb.Sim, cfg, clients...)
}

// MeasureLoad runs a workload to completion and returns its result.
func (c *Cluster) MeasureLoad(cfg LoadConfig, clients ...*Host) LoadResult {
	g := c.NewLoad(cfg, clients...)
	return workload.RunFor(c.tb.Sim, g)
}
