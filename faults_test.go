package lynx_test

import (
	"fmt"
	"testing"
	"time"

	"lynx"
	"lynx/internal/workload"
)

// gpuEcho stands up the standard 4-queue GPU echo deployment on a cluster
// built with the given options.
func gpuEcho(t *testing.T, opts ...lynx.Option) (*lynx.Cluster, *lynx.Server, lynx.Addr, *lynx.Host) {
	t.Helper()
	cluster := lynx.NewCluster(opts...)
	server := cluster.NewMachine("server1", 6)
	bf := server.AttachBlueField("bf1")
	gpu := server.AddGPU("gpu0", lynx.K40m, false, "server1")
	client := cluster.AddClient("client1")
	srv := lynx.NewServer(bf.Platform(7))
	h, err := srv.Register(gpu, lynx.QueueConfig{Kind: lynx.ServerQueue, Slots: 16, SlotSize: 128}, 4)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := srv.AddService(lynx.UDP, 7000, nil, 4, h)
	if err != nil {
		t.Fatal(err)
	}
	qs := h.AccelQueues()
	if err := gpu.LaunchPersistent(cluster.Testbed().Sim, 4, func(tb *lynx.TB) {
		q := qs[tb.Index()]
		for {
			m := q.Recv(tb.Proc())
			tb.Compute(20 * time.Microsecond)
			if q.Send(tb.Proc(), uint16(m.Slot), m.Payload) != nil {
				return
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	return cluster, srv, svc.Addr(), client
}

// Acceptance: with one GPU queue stalled for 100ms mid-run, the MQ-manager
// watchdog fails the queue over to the remaining three, retransmitting
// clients lose no requests, and the queue is restored once it drains.
func TestStallFailoverLosesNoRequests(t *testing.T) {
	cluster, srv, target, client := gpuEcho(t,
		lynx.WithSeed(3),
		lynx.WithFaults(lynx.FaultConfig{
			Stalls: []lynx.FaultStall{{Accel: "gpu0", Queue: 0, At: 5 * time.Millisecond, For: 100 * time.Millisecond}},
		}),
	)
	defer cluster.Close()
	res := cluster.MeasureLoad(lynx.LoadConfig{
		Proto: workload.UDP, Target: target, Payload: 64,
		Clients: 8, Duration: 150 * time.Millisecond, Warmup: time.Millisecond,
		Timeout: 2 * time.Millisecond, Retries: 3,
	}, client)
	st := srv.Stats()
	if cluster.FaultStats().StallHits == 0 {
		t.Fatal("the stall window never hit the accelerator")
	}
	if st.Failovers == 0 {
		t.Fatalf("watchdog never failed the stalled queue over: %s", st)
	}
	if st.Failbacks == 0 {
		t.Fatalf("stalled queue never restored after draining: %s", st)
	}
	if res.Lost != 0 {
		t.Fatalf("lost %d requests across a single-queue stall (stats: %s, workload: %s)",
			res.Lost, st, res)
	}
	if res.Retries == 0 {
		t.Fatal("clients never retransmitted — the stall was not felt")
	}
}

// Acceptance: at 1% datagram loss, retransmitting clients keep goodput at
// ≥90% of the zero-loss run.
func TestLossyGoodputStaysHigh(t *testing.T) {
	run := func(loss float64) lynx.LoadResult {
		opts := []lynx.Option{lynx.WithSeed(5)}
		if loss > 0 {
			opts = append(opts, lynx.WithFaults(lynx.FaultConfig{DropRate: loss}))
		}
		cluster, _, target, client := gpuEcho(t, opts...)
		defer cluster.Close()
		return cluster.MeasureLoad(lynx.LoadConfig{
			Proto: workload.UDP, Target: target, Payload: 64,
			Clients: 8, Duration: 20 * time.Millisecond, Warmup: 2 * time.Millisecond,
			Timeout: time.Millisecond, Retries: 3,
		}, client)
	}
	clean, lossy := run(0), run(0.01)
	if clean.GoodputFraction() < 0.99 {
		t.Fatalf("zero-loss run already losing requests: %s", clean)
	}
	if g := lossy.GoodputFraction(); g < 0.9*clean.GoodputFraction() {
		t.Fatalf("goodput %.3f under 1%% loss, want ≥90%% of clean %.3f", g, clean.GoodputFraction())
	}
	if lossy.Retries == 0 {
		t.Fatal("no retransmits at 1% loss — faults not injected?")
	}
}

// Two clusters built with the same seed and the same fault plan must produce
// byte-identical statistics — the fault plane draws from its own seeded
// stream and perturbs nothing else.
func TestFaultPlanDeterminism(t *testing.T) {
	run := func() string {
		cluster, srv, target, client := gpuEcho(t,
			lynx.WithSeed(42),
			lynx.WithFaults(lynx.FaultConfig{
				Seed: 42, DropRate: 0.02, DupRate: 0.01, DelayRate: 0.05,
				RDMAErrRate: 0.005, PCIeSpikeRate: 0.001,
				Stalls: []lynx.FaultStall{{Accel: "gpu0", Queue: 1, At: 3 * time.Millisecond, For: 10 * time.Millisecond}},
			}),
		)
		defer cluster.Close()
		res := cluster.MeasureLoad(lynx.LoadConfig{
			Proto: workload.UDP, Target: target, Payload: 64,
			Clients: 8, Duration: 20 * time.Millisecond, Warmup: time.Millisecond,
			Timeout: time.Millisecond, Retries: 2,
		}, client)
		return fmt.Sprintf("%s | %s | sent=%d rcvd=%d lost=%d retries=%d p50=%v p99=%v",
			srv.Stats(), cluster.FaultStats(),
			res.Sent, res.Received, res.Lost, res.Retries, res.Hist.Median(), res.Hist.P99())
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("nondeterministic under faults:\n  %s\n  %s", a, b)
	}
}

// The hot path (UDP receive workers and MQ-manager sweeps) runs on the
// scheduler's run-to-completion task substrate; this drives it under armed
// runtime invariants AND fault injection at once, proving the checkers'
// conservation ledgers (request conservation, ring bounds, span telescoping)
// hold when the stages execute as inline continuations rather than
// coroutines. RDMAErrRate is armed too: go-back-N retries reorder header
// snapshots relative to CQE delivery, which used to trip the mqueue
// header-monotonicity check as a false positive; absorbHeader now orders
// snapshots by wire time (CQE.At) and drops stale ones, so this run doubles
// as the regression test for that fix.
func TestInvariantsHoldOnTaskSubstrateUnderFaults(t *testing.T) {
	cluster, srv, target, client := gpuEcho(t,
		lynx.WithSeed(11),
		lynx.WithInvariants(),
		lynx.WithFaults(lynx.FaultConfig{
			Seed: 11, DropRate: 0.02, DelayRate: 0.05, RDMAErrRate: 0.005,
		}),
	)
	defer cluster.Close()
	res := cluster.MeasureLoad(lynx.LoadConfig{
		Proto: workload.UDP, Target: target, Payload: 64,
		Clients: 8, Duration: 20 * time.Millisecond, Warmup: time.Millisecond,
		Timeout: time.Millisecond, Retries: 3,
	}, client)
	if res.Received == 0 {
		t.Fatal("no traffic flowed")
	}
	if srv.Stats().Received == 0 {
		t.Fatal("task-hosted dispatch path never ran")
	}
	cluster.Close()
	if rep := cluster.InvariantReport(); !rep.OK() {
		t.Fatalf("invariant violations on the task substrate under faults:\n%s", rep)
	} else if rep.Finishers == 0 {
		t.Fatal("no invariant finishers ran — WithInvariants not wired")
	}
}
