package lynx_test

import (
	"fmt"
	"testing"
	"time"

	"lynx"
	"lynx/internal/workload"
)

// TestPublicAPIEndToEnd drives the whole public surface: cluster building,
// server registration, accelerator-side code, load generation.
func TestPublicAPIEndToEnd(t *testing.T) {
	cluster := lynx.NewCluster(lynx.WithSeed(7))
	defer cluster.Close()
	server := cluster.NewMachine("server1", 6)
	bf := server.AttachBlueField("bf1")
	gpu := server.AddGPU("gpu0", lynx.K40m, false, "server1")
	client := cluster.AddClient("client1")

	srv := lynx.NewServer(bf.Platform(7))
	h, err := srv.Register(gpu, lynx.QueueConfig{Kind: lynx.ServerQueue, Slots: 16, SlotSize: 128}, 2)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := srv.AddService(lynx.UDP, 7000, nil, 2, h)
	if err != nil {
		t.Fatal(err)
	}
	qs := h.AccelQueues()
	if err := gpu.LaunchPersistent(cluster.Testbed().Sim, 2, func(tb *lynx.TB) {
		q := qs[tb.Index()]
		for {
			m := q.Recv(tb.Proc())
			tb.Compute(15 * time.Microsecond)
			if q.Send(tb.Proc(), uint16(m.Slot), m.Payload) != nil {
				return
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	res := cluster.MeasureLoad(lynx.LoadConfig{
		Proto: workload.UDP, Target: svc.Addr(), Payload: 64,
		Clients: 4, Duration: 10 * time.Millisecond, Warmup: time.Millisecond,
	}, client)
	if res.Received < 100 {
		t.Fatalf("only %d responses through the public API", res.Received)
	}
	if res.Hist.Median() < 20*time.Microsecond || res.Hist.Median() > 500*time.Microsecond {
		t.Fatalf("median latency %v implausible", res.Hist.Median())
	}
	st := srv.Stats()
	if st.Received == 0 || st.Responded == 0 {
		t.Fatal("server stats empty")
	}
}

func TestDefaultParamsCopy(t *testing.T) {
	p := lynx.DefaultParams()
	p.KernelLaunch = time.Hour
	if lynx.DefaultParams().KernelLaunch == time.Hour {
		t.Fatal("DefaultParams must return a copy")
	}
}

func TestClusterClockControls(t *testing.T) {
	cluster := lynx.NewCluster()
	defer cluster.Close()
	fired := false
	cluster.After(5*time.Millisecond, func() { fired = true })
	cluster.Run(time.Millisecond)
	if fired {
		t.Fatal("timer fired early")
	}
	if cluster.Now() != time.Millisecond {
		t.Fatalf("clock at %v", cluster.Now())
	}
	cluster.Run(10 * time.Millisecond)
	if !fired {
		t.Fatal("timer never fired")
	}
	hit := false
	cluster.Spawn("x", func(p *lynx.Proc) {
		p.Sleep(2 * time.Millisecond)
		hit = true
	})
	cluster.RunUntil(time.Second, func() bool { return hit })
	if !hit {
		t.Fatal("RunUntil did not reach the condition")
	}
}

// Determinism across the public API: identical seeds give identical results.
func TestDeterminism(t *testing.T) {
	run := func() string {
		cluster := lynx.NewCluster(lynx.WithSeed(99))
		defer cluster.Close()
		server := cluster.NewMachine("server1", 6)
		bf := server.AttachBlueField("bf1")
		gpu := server.AddGPU("gpu0", lynx.K40m, false, "server1")
		client := cluster.AddClient("client1")
		srv := lynx.NewServer(bf.Platform(7))
		h, _ := srv.Register(gpu, lynx.QueueConfig{Kind: lynx.ServerQueue, Slots: 16, SlotSize: 128}, 4)
		svc, _ := srv.AddService(lynx.UDP, 7000, nil, 4, h)
		qs := h.AccelQueues()
		gpu.LaunchPersistent(cluster.Testbed().Sim, 4, func(tb *lynx.TB) {
			q := qs[tb.Index()]
			for {
				m := q.Recv(tb.Proc())
				tb.Compute(20 * time.Microsecond)
				if q.Send(tb.Proc(), uint16(m.Slot), m.Payload) != nil {
					return
				}
			}
		})
		srv.Start()
		res := cluster.MeasureLoad(lynx.LoadConfig{
			Proto: workload.UDP, Target: svc.Addr(), Payload: 64,
			Clients: 8, Duration: 5 * time.Millisecond, Warmup: time.Millisecond,
		}, client)
		return fmt.Sprintf("%d/%d/%v/%v", res.Sent, res.Received, res.Hist.Median(), res.Hist.P99())
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("nondeterministic: %s vs %s", a, b)
	}
}
