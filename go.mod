module lynx

go 1.22
