package lynx_test

// Seeded config fuzzing: a quickcheck-style harness that draws
// random-but-reproducible NewCluster option vectors and deployment shapes,
// runs a short simulation under WithInvariants, and checks metamorphic
// properties no particular configuration should violate:
//
//   - every runtime invariant holds (conservation, ring bounds, clock);
//   - perturbing only the seed moves the saturated throughput headline
//     by less than a few percent;
//   - doubling the mqueue count never loses meaningful throughput;
//   - injecting datagram loss never increases goodput.
//
// Every draw derives from a fixed seed, so a failure reproduces exactly;
// the failing draw's shape is logged for replay.

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"lynx"
	"lynx/internal/workload"
)

// quickDraws is how many random deployments the harness exercises.
const quickDraws = 8

// quickConfig is one randomly drawn deployment shape.
type quickConfig struct {
	Seed     uint64
	OnBF     bool // Lynx on BlueField vs on host Xeon cores
	Cores    int  // dispatcher cores on the chosen platform
	NQueues  int
	Slots    int
	SlotSize int
	Payload  int
	Clients  int
	Compute  time.Duration
	DropRate float64 // for the loss property run only
}

// drawQuick derives a deployment shape from a seeded stream.
func drawQuick(r *rand.Rand, seed uint64) quickConfig {
	slotSize := []int{256, 512, 1100}[r.Intn(3)]
	return quickConfig{
		Seed:     seed,
		OnBF:     r.Intn(2) == 0,
		Cores:    2 + r.Intn(5),
		NQueues:  1 << r.Intn(4), // 1, 2, 4, 8
		Slots:    8 << r.Intn(2), // 8, 16
		SlotSize: slotSize,
		Payload:  16 + r.Intn(slotSize/4),
		Clients:  4 + r.Intn(5),
		Compute:  time.Duration(5+r.Intn(35)) * time.Microsecond,
		DropRate: 0.01 + r.Float64()*0.04,
	}
}

// runQuick stands up the drawn deployment under WithInvariants, saturates it
// with a closed-loop workload, and returns the load result and the invariant
// report (finishers included: the cluster is Closed before reporting).
func runQuick(t *testing.T, qc quickConfig, extra ...lynx.Option) (lynx.LoadResult, lynx.InvariantReport) {
	t.Helper()
	opts := append([]lynx.Option{lynx.WithSeed(qc.Seed), lynx.WithInvariants()}, extra...)
	cluster := lynx.NewCluster(opts...)
	defer cluster.Close()
	server := cluster.NewMachine("server1", 6)
	bf := server.AttachBlueField("bf1")
	gpu := server.AddGPU("gpu0", lynx.K40m, false, "server1")
	client := cluster.AddClient("client1")

	plat := server.HostPlatform(qc.Cores, true)
	if qc.OnBF {
		plat = bf.Platform(qc.Cores)
	}
	srv := lynx.NewServer(plat)
	h, err := srv.Register(gpu, lynx.QueueConfig{
		Kind: lynx.ServerQueue, Slots: qc.Slots, SlotSize: qc.SlotSize,
	}, qc.NQueues)
	if err != nil {
		t.Fatalf("%+v: %v", qc, err)
	}
	svc, err := srv.AddService(lynx.UDP, 7000, nil, qc.NQueues, h)
	if err != nil {
		t.Fatalf("%+v: %v", qc, err)
	}
	qs := h.AccelQueues()
	if err := gpu.LaunchPersistent(cluster.Testbed().Sim, qc.NQueues, func(tb *lynx.TB) {
		q := qs[tb.Index()]
		for {
			m := q.Recv(tb.Proc())
			tb.Compute(qc.Compute)
			if q.Send(tb.Proc(), uint16(m.Slot), m.Payload) != nil {
				return
			}
		}
	}); err != nil {
		t.Fatalf("%+v: %v", qc, err)
	}
	if err := srv.Start(); err != nil {
		t.Fatalf("%+v: %v", qc, err)
	}
	res := cluster.MeasureLoad(lynx.LoadConfig{
		Proto: workload.UDP, Target: svc.Addr(), Payload: qc.Payload,
		Clients: qc.Clients, Duration: 10 * time.Millisecond, Warmup: 2 * time.Millisecond,
		Timeout: 5 * time.Millisecond,
	}, client)
	cluster.Close()
	return res, cluster.InvariantReport()
}

// TestQuickConfigs is the seeded config-fuzzing harness.
func TestQuickConfigs(t *testing.T) {
	for i := 0; i < quickDraws; i++ {
		i := i
		t.Run(fmt.Sprintf("draw%02d", i), func(t *testing.T) {
			t.Parallel()
			r := rand.New(rand.NewSource(int64(0xC0FFEE + i)))
			qc := drawQuick(r, uint64(1000+i))
			t.Logf("shape: %+v", qc)

			base, rep := runQuick(t, qc)
			if !rep.OK() {
				t.Fatalf("invariants violated for %+v:\n%s", qc, rep)
			}
			if rep.Finishers == 0 {
				t.Fatalf("no invariant finishers ran — WithInvariants not wired")
			}
			if base.Received == 0 {
				t.Fatalf("no responses for %+v", qc)
			}

			// Property: the throughput headline is a property of the shape,
			// not of the seed. Perturbing only the seed moves it <5%.
			perturbed := qc
			perturbed.Seed = qc.Seed + 1
			alt, rep2 := runQuick(t, perturbed)
			if !rep2.OK() {
				t.Fatalf("invariants violated after seed perturbation:\n%s", rep2)
			}
			if d := relDiff(base.Throughput(), alt.Throughput()); d > 0.05 {
				t.Errorf("seed %d -> %d moved throughput %.1f%% (%.0f vs %.0f req/s)",
					qc.Seed, perturbed.Seed, d*100, base.Throughput(), alt.Throughput())
			}

			// Property: more parallelism never costs meaningful throughput.
			wider := qc
			wider.NQueues *= 2
			wide, rep3 := runQuick(t, wider)
			if !rep3.OK() {
				t.Fatalf("invariants violated at %d mqueues:\n%s", wider.NQueues, rep3)
			}
			if wide.Throughput() < 0.95*base.Throughput() {
				t.Errorf("%d->%d mqueues dropped throughput %.0f -> %.0f req/s",
					qc.NQueues, wider.NQueues, base.Throughput(), wide.Throughput())
			}

			// Property: injected datagram loss never increases goodput.
			lossy, rep4 := runQuick(t, qc, lynx.WithFaults(lynx.FaultConfig{
				Seed: qc.Seed, DropRate: qc.DropRate,
			}))
			if !rep4.OK() {
				t.Fatalf("invariants violated under %.1f%% loss:\n%s", qc.DropRate*100, rep4)
			}
			if float64(lossy.Received) > 1.02*float64(base.Received) {
				t.Errorf("%.1f%% loss increased goodput: %d -> %d responses",
					qc.DropRate*100, base.Received, lossy.Received)
			}
		})
	}
}

// TestInvariantsPublicAPI exercises WithInvariants/InvariantReport end to
// end: a healthy run reports OK with finishers evaluated, and the report is
// empty-and-passing without the option.
func TestInvariantsPublicAPI(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	qc := drawQuick(r, 7)
	_, rep := runQuick(t, qc)
	if !rep.OK() {
		t.Fatalf("healthy run reported violations:\n%s", rep)
	}
	if rep.Finishers == 0 {
		t.Fatalf("invariant machinery idle: %+v", rep)
	}

	cluster := lynx.NewCluster() // no WithInvariants
	defer cluster.Close()
	if rep := cluster.InvariantReport(); !rep.OK() || rep.Finishers != 0 {
		t.Fatalf("unchecked cluster should report empty-and-passing, got %+v", rep)
	}
}

func relDiff(a, b float64) float64 {
	if a == 0 && b == 0 {
		return 0
	}
	hi := a
	if b > hi {
		hi = b
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d / hi
}
